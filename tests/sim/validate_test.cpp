#include "sim/validate.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace catbatch {
namespace {

TaskGraph simple_graph() {
  TaskGraph g;
  g.add_task(2.0, 1, "a");
  g.add_task(1.0, 2, "b");
  g.add_edge(0, 1);
  return g;
}

Schedule good_schedule() {
  Schedule s;
  s.add(0, 0.0, 2.0, {0});
  s.add(1, 2.0, 3.0, {0, 1});
  return s;
}

TEST(Validate, AcceptsFeasibleSchedule) {
  EXPECT_EQ(validate_schedule(simple_graph(), good_schedule(), 2),
            std::nullopt);
  EXPECT_NO_THROW(require_valid_schedule(simple_graph(), good_schedule(), 2));
}

TEST(Validate, DetectsMissingTask) {
  Schedule s;
  s.add(0, 0.0, 2.0, {0});
  const auto error = validate_schedule(simple_graph(), s, 2);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("entries"), std::string::npos);
}

TEST(Validate, DetectsWrongDuration) {
  Schedule s;
  s.add(0, 0.0, 2.5, {0});  // task 0 has work 2.0
  s.add(1, 2.5, 3.5, {0, 1});
  const auto error = validate_schedule(simple_graph(), s, 2);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("execution time"), std::string::npos);
}

TEST(Validate, NonBinaryDurationsCompareExactly) {
  // 0.6 is not an exact binary fraction; finish - start differs from work
  // by an ulp, but finish == start + work holds for engine-built entries.
  TaskGraph g;
  g.add_task(0.6, 1, "f");
  Schedule s;
  s.add(0, 5.0, 5.0 + 0.6, {0});
  EXPECT_EQ(validate_schedule(g, s, 1), std::nullopt);
}

TEST(Validate, DurationToleranceOptionAllowsSlack) {
  Schedule s;
  s.add(0, 0.0, 2.0000001, {0});
  s.add(1, 3.0, 4.0, {0, 1});
  ValidationOptions options;
  options.time_tolerance = 1e-6;
  EXPECT_EQ(validate_schedule(simple_graph(), s, 2, options), std::nullopt);
}

TEST(Validate, DetectsWrongProcessorCount) {
  Schedule s;
  s.add(0, 0.0, 2.0, {0});
  s.add(1, 2.0, 3.0, {0});  // needs 2 processors
  const auto error = validate_schedule(simple_graph(), s, 2);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("holds"), std::string::npos);
}

TEST(Validate, DetectsOutOfRangeProcessor) {
  Schedule s;
  s.add(0, 0.0, 2.0, {5});
  s.add(1, 2.0, 3.0, {0, 1});
  const auto error = validate_schedule(simple_graph(), s, 2);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("out-of-range"), std::string::npos);
}

TEST(Validate, DetectsPrecedenceViolation) {
  Schedule s;
  s.add(0, 0.0, 2.0, {0});
  s.add(1, 1.0, 2.0, {0, 1});  // starts before predecessor finishes
  const auto error = validate_schedule(simple_graph(), s, 2);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("predecessor"), std::string::npos);
}

TEST(Validate, BackToBackAtSameInstantIsFeasible) {
  // Open intervals: a successor may start exactly when the predecessor
  // finishes, and capacity frees at the same instant.
  TaskGraph g;
  g.add_task(1.0, 2, "x");
  g.add_task(1.0, 2, "y");
  g.add_edge(0, 1);
  Schedule s;
  s.add(0, 0.0, 1.0, {0, 1});
  s.add(1, 1.0, 2.0, {0, 1});
  EXPECT_EQ(validate_schedule(g, s, 2), std::nullopt);
}

TEST(Validate, DetectsCapacityOverflow) {
  TaskGraph g;
  g.add_task(1.0, 2, "x");
  g.add_task(1.0, 2, "y");
  Schedule s;
  s.add(0, 0.0, 1.0, {0, 1});
  s.add(1, 0.5, 1.5, {1, 2});
  const auto error = validate_schedule(g, s, 3);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("capacity"), std::string::npos);
}

TEST(Validate, DetectsProcessorDoubleBooking) {
  // Capacity is fine (2 of 4) but both tasks claim processor 0.
  TaskGraph g;
  g.add_task(1.0, 1, "x");
  g.add_task(1.0, 1, "y");
  Schedule s;
  s.add(0, 0.0, 1.0, {0});
  s.add(1, 0.5, 1.5, {0});
  const auto error = validate_schedule(g, s, 4);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("concurrently"), std::string::npos);
}

TEST(Validate, ProcessorSetCheckCanBeDisabled) {
  TaskGraph g;
  g.add_task(1.0, 1, "x");
  g.add_task(1.0, 1, "y");
  Schedule s;
  s.add(0, 0.0, 1.0, {0});
  s.add(1, 0.5, 1.5, {0});
  ValidationOptions options;
  options.check_processor_sets = false;
  EXPECT_EQ(validate_schedule(g, s, 4, options), std::nullopt);
}

TEST(Validate, PrecedenceTieAtPredecessorFinishIsFeasibleAtAnyTolerance) {
  // Regression for the one-epsilon policy: an exact tie at a predecessor's
  // finish time must be accepted both exactly and under a tolerance (it
  // used to depend on which check happened to see the tie first).
  TaskGraph g;
  g.add_task(0.6, 1, "pred");  // 0.6 is not a binary fraction
  g.add_task(0.6, 1, "succ");
  g.add_edge(0, 1);
  Schedule s;
  s.add(0, 0.0, 0.6, {0});
  s.add(1, 0.6, 0.6 + 0.6, {0});
  EXPECT_EQ(validate_schedule(g, s, 1), std::nullopt);
  ValidationOptions tolerant;
  tolerant.time_tolerance = 1e-9;
  EXPECT_EQ(validate_schedule(g, s, 1, tolerant), std::nullopt);
}

TEST(Validate, ToleranceCoversPrecedenceAndCapacityAlike) {
  // A successor nudged half a tolerance before its predecessor's finish —
  // on the same processors — is feasible up to the documented tolerance.
  // The pre-fix validator accepted the duration slack but rejected the
  // same slack at the precedence and capacity checks.
  constexpr Time tol = 1e-6;
  TaskGraph g;
  g.add_task(1.0, 2, "pred");
  g.add_task(1.0, 2, "succ");
  g.add_edge(0, 1);
  Schedule s;
  s.add(0, 0.0, 1.0, {0, 1});
  s.add(1, 1.0 - tol / 2, 2.0 - tol / 2, {0, 1});
  ValidationOptions tolerant;
  tolerant.time_tolerance = tol;
  EXPECT_EQ(validate_schedule(g, s, 2, tolerant), std::nullopt);
  // Exact validation still rejects it (precedence, capacity and
  // disjointness all fire; precedence is reported first).
  const auto exact_error = validate_schedule(g, s, 2);
  ASSERT_TRUE(exact_error.has_value());
  EXPECT_NE(exact_error->find("predecessor"), std::string::npos);
}

TEST(Validate, BeyondToleranceStillRejected) {
  constexpr Time tol = 1e-6;
  TaskGraph g;
  g.add_task(1.0, 1, "pred");
  g.add_task(1.0, 1, "succ");
  g.add_edge(0, 1);
  Schedule s;
  s.add(0, 0.0, 1.0, {0});
  s.add(1, 1.0 - 4 * tol, 2.0 - 4 * tol, {0});
  ValidationOptions tolerant;
  tolerant.time_tolerance = tol;
  const auto error = validate_schedule(g, s, 1, tolerant);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("predecessor"), std::string::npos);
}

TEST(Validate, CountingOverCapacityCaught) {
  // Width-carrying entries: disjointness is unverifiable, so the capacity
  // sweep must still enforce Σ p_i <= P at every width boundary.
  TaskGraph g;
  g.add_task(2.0, 3, "a");
  g.add_task(2.0, 3, "b");
  Schedule s;
  s.add_counted(0, 0.0, 2.0, 3);
  s.add_counted(1, 1.0, 3.0, 3);
  ValidationOptions counting;
  counting.check_processor_sets = false;
  const auto error = validate_schedule(g, s, 4, counting);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("capacity"), std::string::npos);
}

TEST(Validate, CountingCapacityIgnoresTimeTolerance) {
  // A sub-tolerance over-capacity window is forgiven for identity entries
  // (the handoff is feasible after shifting times by <= tolerance) but
  // NEVER for counting entries: the engine emits exact event times and the
  // exact sweep is the only capacity evidence counting mode has.
  constexpr Time tol = 1e-6;
  TaskGraph g;
  g.add_task(1.0, 3, "a");
  g.add_task(1.0, 3, "b");
  ValidationOptions tolerant_counting;
  tolerant_counting.check_processor_sets = false;
  tolerant_counting.time_tolerance = tol;

  Schedule counted;
  counted.add_counted(0, 0.0, 1.0, 3);
  counted.add_counted(1, 1.0 - tol / 2, 2.0 - tol / 2, 3);
  const auto error =
      validate_schedule(g, counted, 4, tolerant_counting);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("capacity"), std::string::npos);

  // The identical timing with concrete identities on a handoff is the
  // feasible-up-to-tolerance case the policy exists for.
  Schedule identity;
  identity.add(0, 0.0, 1.0, {0, 1, 2});
  identity.add(1, 1.0 - tol / 2, 2.0 - tol / 2, {0, 1, 2});
  ValidationOptions tolerant;
  tolerant.time_tolerance = tol;
  EXPECT_EQ(validate_schedule(g, identity, 4, tolerant), std::nullopt);
}

TEST(Validate, RequireValidThrowsWithMessage) {
  Schedule s;
  s.add(0, 0.0, 2.0, {0});
  s.add(1, 0.0, 1.0, {0, 1});
  EXPECT_THROW(require_valid_schedule(simple_graph(), s, 2),
               ContractViolation);
}

TEST(Validate, EmptyInstanceEmptySchedule) {
  const TaskGraph g;
  const Schedule s;
  EXPECT_EQ(validate_schedule(g, s, 1), std::nullopt);
}

}  // namespace
}  // namespace catbatch
