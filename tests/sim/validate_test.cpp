#include "sim/validate.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace catbatch {
namespace {

TaskGraph simple_graph() {
  TaskGraph g;
  g.add_task(2.0, 1, "a");
  g.add_task(1.0, 2, "b");
  g.add_edge(0, 1);
  return g;
}

Schedule good_schedule() {
  Schedule s;
  s.add(0, 0.0, 2.0, {0});
  s.add(1, 2.0, 3.0, {0, 1});
  return s;
}

TEST(Validate, AcceptsFeasibleSchedule) {
  EXPECT_EQ(validate_schedule(simple_graph(), good_schedule(), 2),
            std::nullopt);
  EXPECT_NO_THROW(require_valid_schedule(simple_graph(), good_schedule(), 2));
}

TEST(Validate, DetectsMissingTask) {
  Schedule s;
  s.add(0, 0.0, 2.0, {0});
  const auto error = validate_schedule(simple_graph(), s, 2);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("entries"), std::string::npos);
}

TEST(Validate, DetectsWrongDuration) {
  Schedule s;
  s.add(0, 0.0, 2.5, {0});  // task 0 has work 2.0
  s.add(1, 2.5, 3.5, {0, 1});
  const auto error = validate_schedule(simple_graph(), s, 2);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("execution time"), std::string::npos);
}

TEST(Validate, NonBinaryDurationsCompareExactly) {
  // 0.6 is not an exact binary fraction; finish - start differs from work
  // by an ulp, but finish == start + work holds for engine-built entries.
  TaskGraph g;
  g.add_task(0.6, 1, "f");
  Schedule s;
  s.add(0, 5.0, 5.0 + 0.6, {0});
  EXPECT_EQ(validate_schedule(g, s, 1), std::nullopt);
}

TEST(Validate, DurationToleranceOptionAllowsSlack) {
  Schedule s;
  s.add(0, 0.0, 2.0000001, {0});
  s.add(1, 3.0, 4.0, {0, 1});
  ValidationOptions options;
  options.duration_tolerance = 1e-6;
  EXPECT_EQ(validate_schedule(simple_graph(), s, 2, options), std::nullopt);
}

TEST(Validate, DetectsWrongProcessorCount) {
  Schedule s;
  s.add(0, 0.0, 2.0, {0});
  s.add(1, 2.0, 3.0, {0});  // needs 2 processors
  const auto error = validate_schedule(simple_graph(), s, 2);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("holds"), std::string::npos);
}

TEST(Validate, DetectsOutOfRangeProcessor) {
  Schedule s;
  s.add(0, 0.0, 2.0, {5});
  s.add(1, 2.0, 3.0, {0, 1});
  const auto error = validate_schedule(simple_graph(), s, 2);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("out-of-range"), std::string::npos);
}

TEST(Validate, DetectsPrecedenceViolation) {
  Schedule s;
  s.add(0, 0.0, 2.0, {0});
  s.add(1, 1.0, 2.0, {0, 1});  // starts before predecessor finishes
  const auto error = validate_schedule(simple_graph(), s, 2);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("predecessor"), std::string::npos);
}

TEST(Validate, BackToBackAtSameInstantIsFeasible) {
  // Open intervals: a successor may start exactly when the predecessor
  // finishes, and capacity frees at the same instant.
  TaskGraph g;
  g.add_task(1.0, 2, "x");
  g.add_task(1.0, 2, "y");
  g.add_edge(0, 1);
  Schedule s;
  s.add(0, 0.0, 1.0, {0, 1});
  s.add(1, 1.0, 2.0, {0, 1});
  EXPECT_EQ(validate_schedule(g, s, 2), std::nullopt);
}

TEST(Validate, DetectsCapacityOverflow) {
  TaskGraph g;
  g.add_task(1.0, 2, "x");
  g.add_task(1.0, 2, "y");
  Schedule s;
  s.add(0, 0.0, 1.0, {0, 1});
  s.add(1, 0.5, 1.5, {1, 2});
  const auto error = validate_schedule(g, s, 3);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("capacity"), std::string::npos);
}

TEST(Validate, DetectsProcessorDoubleBooking) {
  // Capacity is fine (2 of 4) but both tasks claim processor 0.
  TaskGraph g;
  g.add_task(1.0, 1, "x");
  g.add_task(1.0, 1, "y");
  Schedule s;
  s.add(0, 0.0, 1.0, {0});
  s.add(1, 0.5, 1.5, {0});
  const auto error = validate_schedule(g, s, 4);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("concurrently"), std::string::npos);
}

TEST(Validate, ProcessorSetCheckCanBeDisabled) {
  TaskGraph g;
  g.add_task(1.0, 1, "x");
  g.add_task(1.0, 1, "y");
  Schedule s;
  s.add(0, 0.0, 1.0, {0});
  s.add(1, 0.5, 1.5, {0});
  ValidationOptions options;
  options.check_processor_sets = false;
  EXPECT_EQ(validate_schedule(g, s, 4, options), std::nullopt);
}

TEST(Validate, RequireValidThrowsWithMessage) {
  Schedule s;
  s.add(0, 0.0, 2.0, {0});
  s.add(1, 0.0, 1.0, {0, 1});
  EXPECT_THROW(require_valid_schedule(simple_graph(), s, 2),
               ContractViolation);
}

TEST(Validate, EmptyInstanceEmptySchedule) {
  const TaskGraph g;
  const Schedule s;
  EXPECT_EQ(validate_schedule(g, s, 1), std::nullopt);
}

}  // namespace
}  // namespace catbatch
