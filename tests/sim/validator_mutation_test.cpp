// Mutation testing of the validator: start from a known-valid schedule and
// apply one corruption from each violation class; the validator must catch
// every one. This guards the guard — all other guarantees in this
// repository lean on validate_schedule().
#include <gtest/gtest.h>

#include "instances/random_dags.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"

namespace catbatch {
namespace {

struct Fixture {
  TaskGraph graph;
  Schedule valid;
  int procs = 8;
};

Fixture make_fixture(std::uint64_t seed) {
  Fixture f;
  Rng rng(seed);
  f.graph = random_layered_dag(rng, 40, 5, RandomTaskParams{});
  ListScheduler sched;
  f.valid = simulate(f.graph, sched, f.procs).schedule;
  return f;
}

/// Rebuilds a schedule applying `mutate` to each entry (returning false
/// drops the entry).
template <typename Fn>
Schedule rebuild(const Schedule& source, Fn&& mutate) {
  Schedule out;
  for (ScheduledTask e : source.entries()) {
    if (mutate(e)) out.add(e.id, e.start, e.finish, e.processors);
  }
  return out;
}

TEST(ValidatorMutation, BaselineIsValid) {
  const Fixture f = make_fixture(1);
  EXPECT_EQ(validate_schedule(f.graph, f.valid, f.procs), std::nullopt);
}

TEST(ValidatorMutation, DroppedTaskCaught) {
  const Fixture f = make_fixture(2);
  bool dropped = false;
  const Schedule bad = rebuild(f.valid, [&](ScheduledTask& e) {
    if (!dropped && e.id == 7) {
      dropped = true;
      return false;
    }
    return true;
  });
  EXPECT_TRUE(validate_schedule(f.graph, bad, f.procs).has_value());
}

TEST(ValidatorMutation, StretchedDurationCaught) {
  const Fixture f = make_fixture(3);
  const Schedule bad = rebuild(f.valid, [](ScheduledTask& e) {
    if (e.id == 5) e.finish += 0.25;
    return true;
  });
  const auto error = validate_schedule(f.graph, bad, f.procs);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("execution time"), std::string::npos);
}

TEST(ValidatorMutation, EarlyStartBeforePredecessorCaught) {
  const Fixture f = make_fixture(4);
  // Find a task with a predecessor and pull its whole interval before the
  // predecessor's finish.
  TaskId victim = kInvalidTask;
  for (TaskId id = 0; id < f.graph.size(); ++id) {
    if (!f.graph.predecessors(id).empty()) victim = id;
  }
  ASSERT_NE(victim, kInvalidTask);
  const Time pred_finish =
      f.valid.entry_for(f.graph.predecessors(victim)[0]).finish;
  const Schedule bad = rebuild(f.valid, [&](ScheduledTask& e) {
    if (e.id == victim) {
      const Time len = e.finish - e.start;
      e.start = std::max(0.0, pred_finish - 0.5 * len);
      e.finish = e.start + len;
    }
    return true;
  });
  ValidationOptions tolerant;
  tolerant.check_processor_sets = false;  // isolate the precedence check
  tolerant.time_tolerance = 1e-9;
  const auto error = validate_schedule(f.graph, bad, f.procs, tolerant);
  ASSERT_TRUE(error.has_value());
}

TEST(ValidatorMutation, StolenProcessorCaught) {
  const Fixture f = make_fixture(5);
  // Re-map one task's processors onto another concurrently running task's
  // set. Find two overlapping entries.
  const auto entries = f.valid.entries();
  for (std::size_t a = 0; a < entries.size(); ++a) {
    for (std::size_t b = a + 1; b < entries.size(); ++b) {
      const bool overlap = entries[a].start < entries[b].finish &&
                           entries[b].start < entries[a].finish;
      if (!overlap) continue;
      if (entries[a].processors.size() < entries[b].processors.size()) {
        continue;
      }
      const TaskId thief = entries[b].id;
      const auto& loot = entries[a].processors;
      const Schedule bad = rebuild(f.valid, [&](ScheduledTask& e) {
        if (e.id == thief) {
          e.processors.assign(loot.begin(),
                              loot.begin() +
                                  static_cast<std::ptrdiff_t>(
                                      e.processors.size()));
        }
        return true;
      });
      const auto error = validate_schedule(f.graph, bad, f.procs);
      ASSERT_TRUE(error.has_value());
      EXPECT_NE(error->find("concurrently"), std::string::npos);
      return;
    }
  }
  GTEST_SKIP() << "no overlapping pair in this schedule";
}

TEST(ValidatorMutation, WrongWidthCaught) {
  const Fixture f = make_fixture(6);
  const Schedule bad = rebuild(f.valid, [&](ScheduledTask& e) {
    if (e.id == 3) e.processors.push_back(f.procs - 1 - e.processors[0]);
    return true;
  });
  // Either the width check or the duplicate check fires; both are errors.
  EXPECT_TRUE(validate_schedule(f.graph, bad, f.procs).has_value());
}

TEST(ValidatorMutation, ForeignProcessorCaught) {
  const Fixture f = make_fixture(7);
  const Schedule bad = rebuild(f.valid, [&](ScheduledTask& e) {
    if (e.id == 2) e.processors[0] = f.procs + 3;
    return true;
  });
  const auto error = validate_schedule(f.graph, bad, f.procs);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("out-of-range"), std::string::npos);
}

TEST(ValidatorMutation, ManySeedsNoFalsePositives) {
  for (std::uint64_t seed = 10; seed < 30; ++seed) {
    const Fixture f = make_fixture(seed);
    EXPECT_EQ(validate_schedule(f.graph, f.valid, f.procs), std::nullopt)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace catbatch
