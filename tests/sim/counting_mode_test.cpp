// Counting-mode equivalence: ScheduleMode::Counting skips concrete
// processor identities but must be observationally identical everywhere
// else — bit-equal makespans, start/finish times, decision counts and
// busy areas for every registry scheduler, since schedulers never see
// processor identities.
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/rng.hpp"

namespace catbatch {
namespace {

class CountingModeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CountingModeTest, MatchesIdentityModeOnCorpus) {
  const std::string sched_name = GetParam();
  const SchedulerEntry* entry = find_scheduler(sched_name);
  ASSERT_NE(entry, nullptr);
  const auto families = standard_families(64, 8);
  constexpr int kProcs = 8;
  for (const auto& fam : families) {
    Rng rng(11);
    const TaskGraph g = fam.make(rng);
    if (entry->independent_only && g.edge_count() != 0) continue;

    auto identity_sched = make_scheduler(sched_name, g);
    ASSERT_NE(identity_sched, nullptr);
    const SimResult identity = simulate(g, *identity_sched, kProcs);

    auto counting_sched = make_scheduler(sched_name, g);
    const SimResult counting = simulate(g, *counting_sched, kProcs,
                                        SimOptions{ScheduleMode::Counting});

    EXPECT_EQ(identity.makespan, counting.makespan) << fam.label;
    EXPECT_EQ(identity.stats.decision_points, counting.stats.decision_points)
        << fam.label;
    EXPECT_EQ(identity.stats.events, counting.stats.events) << fam.label;
    EXPECT_EQ(identity.stats.busy_area, counting.stats.busy_area)
        << fam.label;
    EXPECT_EQ(identity.ready_times, counting.ready_times) << fam.label;
    ASSERT_EQ(identity.schedule.size(), counting.schedule.size()) << fam.label;
    for (const ScheduledTask& e : identity.schedule.entries()) {
      const ScheduledTask& c = counting.schedule.entry_for(e.id);
      EXPECT_EQ(e.start, c.start) << fam.label;
      EXPECT_EQ(e.finish, c.finish) << fam.label;
      EXPECT_EQ(e.procs(), c.procs()) << fam.label;
      EXPECT_TRUE(c.processors.empty()) << fam.label;
    }

    // A counting schedule is checkable once processor-set checks are off...
    ValidationOptions no_sets;
    no_sets.check_processor_sets = false;
    EXPECT_EQ(validate_schedule(g, counting.schedule, kProcs, no_sets),
              std::nullopt)
        << fam.label;
    // ...and rejected under the default (identity-expecting) options.
    if (g.size() > 0) {
      EXPECT_NE(validate_schedule(g, counting.schedule, kProcs), std::nullopt)
          << fam.label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, CountingModeTest,
    ::testing::Values("catbatch", "relaxed-catbatch", "list-fifo",
                      "list-longest-first", "list-shortest-first",
                      "list-widest-first", "list-narrowest-first",
                      "list-smallest-criticality", "easy-backfill", "rank",
                      "offline-catbatch", "divide-conquer",
                      "contiguous-catbatch", "shelf-nfdh", "shelf-ffdh"),
    [](const ::testing::TestParamInfo<const char*>& param_info) {
      std::string name = param_info.param;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace catbatch
