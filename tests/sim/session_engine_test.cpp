// SessionEngine: the stepwise (inverted) engine under both clocks.
//
// The batch pinning suites (golden schedules, counting==identity, the
// alloc hook) already hold simulate() — and therefore the Simulated-clock
// session path it wraps — bit-identical across the inversion. This suite
// covers what only the stepwise API exposes: step/advance/drain semantics,
// External-clock equivalence with the Simulated clock, incremental
// cross-batch submissions, and the contract checks on external events.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "sim/session.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace catbatch {
namespace {

TaskGraph diamond_graph() {
  TaskGraph g;
  const TaskId a = g.add_task(2.0, 2, "a");
  const TaskId b = g.add_task(1.0, 1, "b");
  const TaskId c = g.add_task(3.0, 3, "c");
  const TaskId d = g.add_task(1.5, 4, "d");
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  return g;
}

std::vector<SourceTask> tasks_of(const TaskGraph& graph) {
  std::vector<SourceTask> tasks;
  tasks.reserve(graph.size());
  for (TaskId id = 0; id < graph.size(); ++id) {
    SourceTask t;
    t.work = graph.task(id).work;
    t.procs = graph.task(id).procs;
    const auto preds = graph.predecessors(id);
    t.predecessors.assign(preds.begin(), preds.end());
    tasks.push_back(std::move(t));
  }
  return tasks;
}

/// Replays a full-graph submission under the External clock, completing
/// tasks in (finish, dispatch-order) order — the simulated queue's
/// tie-break — and returns the decisions in dispatch order.
std::vector<Decision> external_replay(OnlineScheduler& scheduler, int procs,
                                      const TaskGraph& graph,
                                      SimResult* result = nullptr) {
  SessionEngine session(
      scheduler, procs,
      SessionOptions{}.with_clock(SessionClock::External));
  std::vector<Decision> decisions;
  const auto absorb = [&](std::span<const Decision> batch) {
    decisions.insert(decisions.end(), batch.begin(), batch.end());
  };
  absorb(session.submit(tasks_of(graph), 0.0));
  std::vector<std::size_t> running;
  std::size_t dispatched = 0;
  std::size_t completed = 0;
  const auto adopt = [&] {
    for (; dispatched < decisions.size(); ++dispatched) {
      running.push_back(dispatched);
    }
  };
  adopt();
  while (completed < graph.size()) {
    CB_CHECK(!running.empty(), "external replay stalled");
    std::size_t best = 0;
    Time best_finish = 0.0;
    for (std::size_t i = 0; i < running.size(); ++i) {
      const Decision& d = decisions[running[i]];
      const Time finish = d.at + graph.task(d.id).work;
      if (i == 0 || finish < best_finish) {
        best = i;
        best_finish = finish;
      }
    }
    const Decision done = decisions[running[best]];
    running.erase(running.begin() + static_cast<std::ptrdiff_t>(best));
    absorb(session.advance(SessionEvent::completion(done.id, best_finish)));
    ++completed;
    adopt();
  }
  EXPECT_TRUE(session.complete());
  if (result != nullptr) *result = session.finish();
  return decisions;
}

TEST(SessionEngine, StepLoopMatchesBatchSimulate) {
  const TaskGraph graph = diamond_graph();

  auto batch_sched = make_scheduler("catbatch");
  const SimResult batch = simulate(graph, *batch_sched, 4);

  auto step_sched = make_scheduler("catbatch");
  SessionEngine session(*step_sched, 4);
  GraphSource source(graph);
  std::size_t decisions = session.submit(source).size();
  while (!session.idle()) decisions += session.step().size();
  EXPECT_TRUE(session.complete());
  const SimResult stepped = session.finish();

  EXPECT_EQ(decisions, graph.size());
  EXPECT_EQ(stepped.makespan, batch.makespan);
  EXPECT_EQ(stepped.stats.decision_points, batch.stats.decision_points);
  EXPECT_EQ(stepped.stats.events, batch.stats.events);
  ASSERT_EQ(stepped.schedule.size(), batch.schedule.size());
  for (TaskId id = 0; id < graph.size(); ++id) {
    EXPECT_EQ(stepped.schedule.entry_for(id).start,
              batch.schedule.entry_for(id).start);
  }
}

TEST(SessionEngine, StepOnIdleSessionReturnsNothing) {
  auto scheduler = make_scheduler("list-fifo");
  SessionEngine session(*scheduler, 2);
  EXPECT_TRUE(session.idle());
  EXPECT_TRUE(session.step().empty());
  EXPECT_EQ(session.now(), 0.0);
}

TEST(SessionEngine, ExternalClockMatchesSimulatedDecisions) {
  // Random instances across several schedulers: the External-clock replay
  // must reproduce the Simulated decision stream bit for bit.
  for (const char* algo : {"catbatch", "easy-backfill", "list-fifo"}) {
    Rng rng(42);
    TaskGraph graph;
    for (int i = 0; i < 60; ++i) {
      const TaskId id =
          graph.add_task(rng.uniform_real(0.5, 6.0),
                         static_cast<int>(rng.uniform_int(1, 6)));
      if (id > 0 && rng.bernoulli(0.5)) {
        graph.add_edge(static_cast<TaskId>(rng.index(id)), id);
      }
    }

    auto sim_sched = make_scheduler(algo);
    SessionEngine sim_session(*sim_sched, 6);
    std::vector<Decision> sim_decisions;
    const auto absorb = [&](std::span<const Decision> batch) {
      sim_decisions.insert(sim_decisions.end(), batch.begin(), batch.end());
    };
    absorb(sim_session.submit(tasks_of(graph), 0.0));
    while (!sim_session.idle()) absorb(sim_session.step());
    const SimResult sim_result = sim_session.finish();

    auto ext_sched = make_scheduler(algo);
    SimResult ext_result;
    const std::vector<Decision> ext_decisions =
        external_replay(*ext_sched, 6, graph, &ext_result);

    ASSERT_EQ(ext_decisions.size(), sim_decisions.size()) << algo;
    for (std::size_t i = 0; i < sim_decisions.size(); ++i) {
      EXPECT_EQ(ext_decisions[i].id, sim_decisions[i].id) << algo;
      EXPECT_EQ(ext_decisions[i].at, sim_decisions[i].at) << algo;
      EXPECT_EQ(ext_decisions[i].procs, sim_decisions[i].procs) << algo;
    }
    EXPECT_EQ(ext_result.makespan, sim_result.makespan) << algo;
    EXPECT_EQ(ext_result.stats.busy_area, sim_result.stats.busy_area)
        << algo;
  }
}

TEST(SessionEngine, IncrementalSubmitAcrossBatches) {
  // Second batch arrives later and depends on a task from the first.
  auto scheduler = make_scheduler("list-fifo");
  SessionEngine session(
      *scheduler, 2, SessionOptions{}.with_clock(SessionClock::External));

  std::vector<SourceTask> first(1);
  first[0].work = 2.0;
  first[0].procs = 1;
  auto d0 = session.submit(std::move(first), 0.0);
  ASSERT_EQ(d0.size(), 1u);

  std::vector<SourceTask> second(1);
  second[0].work = 1.0;
  second[0].procs = 2;
  second[0].predecessors = {0};
  auto d1 = session.submit(std::move(second), 1.0);
  EXPECT_TRUE(d1.empty());  // predecessor still running

  auto d2 = session.advance(SessionEvent::completion(0, 2.0));
  ASSERT_EQ(d2.size(), 1u);
  EXPECT_EQ(d2.front().id, 1u);
  EXPECT_EQ(d2.front().at, 2.0);
  EXPECT_EQ(session.tasks_submitted(), 2u);
  EXPECT_FALSE(session.complete());
  auto d3 = session.advance(SessionEvent::completion(1, 3.0));
  EXPECT_TRUE(d3.empty());
  EXPECT_TRUE(session.complete());
  EXPECT_EQ(session.finish().makespan, 3.0);
}

TEST(SessionEngine, TickFiresPendingReleases) {
  auto scheduler = make_scheduler("list-fifo");
  SessionEngine session(
      *scheduler, 2, SessionOptions{}.with_clock(SessionClock::External));
  std::vector<SourceTask> tasks(2);
  tasks[0].work = 1.0;
  tasks[0].procs = 1;
  tasks[0].release = 1.5;
  tasks[1].work = 1.0;
  tasks[1].procs = 1;
  tasks[1].release = 4.0;
  EXPECT_TRUE(session.submit(std::move(tasks), 0.0).empty());

  const auto d1 = session.advance(SessionEvent::tick(2.0));
  ASSERT_EQ(d1.size(), 1u);
  EXPECT_EQ(d1.front().id, 0u);
  EXPECT_EQ(d1.front().at, 1.5);  // released at its release time, not 2.0

  const auto d2 = session.advance(SessionEvent::tick(4.0));
  ASSERT_EQ(d2.size(), 1u);
  EXPECT_EQ(d2.front().id, 1u);
  EXPECT_EQ(session.now(), 4.0);
}

TEST(SessionEngine, ExternalEventContractChecks) {
  const auto fresh = [] {
    auto scheduler = make_scheduler("list-fifo");
    auto session = std::make_unique<SessionEngine>(
        *scheduler, 2, SessionOptions{}.with_clock(SessionClock::External));
    std::vector<SourceTask> tasks(1);
    tasks[0].work = 2.0;
    tasks[0].procs = 1;
    session->submit(std::move(tasks), 0.0);
    return std::pair(std::move(scheduler), std::move(session));
  };

  {
    auto [sched, session] = fresh();
    EXPECT_THROW(session->advance(SessionEvent::completion(7, 1.0)),
                 ContractViolation);  // unknown task
  }
  {
    auto [sched, session] = fresh();
    session->advance(SessionEvent::completion(0, 2.0));
    EXPECT_THROW(session->advance(SessionEvent::completion(0, 3.0)),
                 ContractViolation);  // already done
  }
  {
    auto [sched, session] = fresh();
    session->advance(SessionEvent::tick(5.0));
    EXPECT_THROW(session->advance(SessionEvent::completion(0, 1.0)),
                 ContractViolation);  // clock moved backwards
  }
  {
    auto scheduler = make_scheduler("list-fifo");
    SessionEngine session(*scheduler, 2);  // Simulated clock
    EXPECT_THROW(session.advance(SessionEvent::tick(1.0)),
                 ContractViolation);  // advance() needs the External clock
  }
}

TEST(SessionEngine, OptionsBuilderChains) {
  const SessionOptions options = SessionOptions{}
                                     .with_mode(ScheduleMode::Counting)
                                     .with_clock(SessionClock::External)
                                     .with_observer(nullptr);
  EXPECT_EQ(options.mode, ScheduleMode::Counting);
  EXPECT_EQ(options.clock, SessionClock::External);
  EXPECT_EQ(options.observer, nullptr);
}

TEST(SessionEngine, AverageUtilizationGuardsDegeneratePlatforms) {
  SimResult result;
  result.makespan = 2.0;
  result.stats.busy_area = 8.0;
  EXPECT_DOUBLE_EQ(result.average_utilization(4), 1.0);
  EXPECT_DOUBLE_EQ(result.average_utilization(8), 0.5);
  EXPECT_EQ(result.average_utilization(0), 0.0);
  EXPECT_EQ(result.average_utilization(-3), 0.0);
  // Wider-than-int platforms must not overflow the denominator.
  EXPECT_GT(result.average_utilization(std::int64_t{1} << 40), 0.0);
}

}  // namespace
}  // namespace catbatch
