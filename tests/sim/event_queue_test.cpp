// The event queue's one observable contract: pops come out in exactly
// (time, seq) order — bit-identical to the reference binary heap — no
// matter which internal mode (heap or calendar) is active, including under
// adversarial time distributions designed to break bucketing: every event
// at the same instant, power-law clustering, strictly monotone arrivals.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "support/rng.hpp"

namespace catbatch {
namespace {

/// Reference implementation: the plain binary heap the engine used before
/// the calendar queue, with the same push-order seq assignment.
class ReferenceHeap {
 public:
  void push(Time at, TaskId id, SimEvent::Kind kind) {
    heap_.push(SimEvent{at, seq_++, id, /*gen=*/0, kind});
  }
  SimEvent pop() {
    const SimEvent ev = heap_.top();
    heap_.pop();
    return ev;
  }
  [[nodiscard]] bool empty() const { return heap_.empty(); }

 private:
  std::priority_queue<SimEvent, std::vector<SimEvent>, std::greater<SimEvent>>
      heap_;
  std::uint64_t seq_ = 0;
};

/// Drives both queues through the same (time, pop-probability) script and
/// asserts every popped event matches field for field.
void cross_check(const std::vector<Time>& times, Rng& rng,
                 double pop_probability, bool expect_calendar) {
  EventQueue queue;
  ReferenceHeap reference;
  bool saw_calendar = false;
  std::uint32_t next_id = 0;
  for (const Time at : times) {
    const auto kind = (next_id % 3 == 0) ? SimEvent::Kind::Release
                                         : SimEvent::Kind::Completion;
    queue.push(at, next_id, kind);
    reference.push(at, next_id, kind);
    ++next_id;
    saw_calendar = saw_calendar || queue.calendar_active();
    while (!queue.empty() && rng.uniform_real(0.0, 1.0) < pop_probability) {
      ASSERT_FALSE(reference.empty());
      const SimEvent got = queue.pop();
      const SimEvent want = reference.pop();
      ASSERT_EQ(got.at, want.at);
      ASSERT_EQ(got.seq, want.seq);
      ASSERT_EQ(got.id, want.id);
      ASSERT_EQ(got.kind, want.kind);
    }
  }
  while (!queue.empty()) {
    ASSERT_FALSE(reference.empty());
    const SimEvent got = queue.pop();
    const SimEvent want = reference.pop();
    ASSERT_EQ(got.at, want.at);
    ASSERT_EQ(got.seq, want.seq);
    ASSERT_EQ(got.id, want.id);
    ASSERT_EQ(got.kind, want.kind);
  }
  EXPECT_TRUE(reference.empty());
  if (expect_calendar) {
    EXPECT_TRUE(saw_calendar)
        << "distribution was expected to activate the calendar mode";
  }
}

TEST(EventQueue, PopsInTimeOrderWithFifoTieBreak) {
  EventQueue q;
  q.push(3.0, 1, SimEvent::Kind::Completion);
  q.push(1.0, 2, SimEvent::Kind::Completion);
  q.push(1.0, 3, SimEvent::Kind::Release);
  q.push(2.0, 4, SimEvent::Kind::Completion);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.pop().id, 2u);  // t=1, pushed before id 3
  EXPECT_EQ(q.pop().id, 3u);
  EXPECT_EQ(q.pop().id, 4u);
  EXPECT_EQ(q.pop().id, 1u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, AllEqualTimesStayFifoAndNeverKeepACalendar) {
  // 6000 events at the same instant: bucketing is useless, the queue must
  // fall back to (or stay on) the heap and still pop in push order.
  Rng rng(42);
  const std::vector<Time> times(6000, 1.25);
  cross_check(times, rng, 0.3, /*expect_calendar=*/false);

  EventQueue q;
  for (std::uint32_t i = 0; i < 6000; ++i) {
    q.push(7.5, i, SimEvent::Kind::Completion);
  }
  EXPECT_FALSE(q.calendar_active())
      << "a degenerate all-equal distribution must not keep a calendar";
  for (std::uint32_t i = 0; i < 6000; ++i) {
    ASSERT_EQ(q.pop().id, i);
  }
}

TEST(EventQueue, PowerLawClusteredTimesMatchReference) {
  // Heavy-tailed: most events crammed near t=1, a long sparse tail — the
  // classic calendar-queue killer (overcrowded buckets + empty years).
  Rng rng(7);
  std::vector<Time> times;
  times.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double u = std::max(rng.uniform_real(0.0, 1.0), 1e-9);
    times.push_back(1.0 + std::pow(u, -1.5));
  }
  Rng pops(8);
  cross_check(times, pops, 0.2, /*expect_calendar=*/true);
}

TEST(EventQueue, MonotoneTimesMatchReference) {
  // Strictly increasing times, drained concurrently: drives the calendar's
  // day cursor forward through long empty stretches.
  Rng rng(19);
  std::vector<Time> times;
  times.reserve(20000);
  Time t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t += 0.5 + 4.0 * rng.uniform_real(0.0, 1.0);
    times.push_back(t);
  }
  Rng pops(20);
  cross_check(times, pops, 0.2, /*expect_calendar=*/true);
}

TEST(EventQueue, UniformRandomTimesMatchReference) {
  Rng rng(101);
  std::vector<Time> times;
  times.reserve(30000);
  for (int i = 0; i < 30000; ++i) {
    times.push_back(1000.0 * rng.uniform_real(0.0, 1.0));
  }
  Rng pops(102);
  cross_check(times, pops, 0.25, /*expect_calendar=*/true);
}

TEST(EventQueue, TiesInsideACalendarDayStayFifo) {
  // Spread enough to activate the calendar, then hammer one instant so a
  // single day holds a run of equal times; their pop order must be seq.
  EventQueue q;
  std::uint32_t id = 0;
  for (int i = 0; i < 4000; ++i) {
    q.push(static_cast<Time>(i), id++, SimEvent::Kind::Completion);
  }
  for (int i = 0; i < 30; ++i) {
    q.push(1500.5, id++, SimEvent::Kind::Completion);
  }
  ReferenceHeap ref;
  {
    std::uint32_t rid = 0;
    for (int i = 0; i < 4000; ++i) {
      ref.push(static_cast<Time>(i), rid++, SimEvent::Kind::Completion);
    }
    for (int i = 0; i < 30; ++i) {
      ref.push(1500.5, rid++, SimEvent::Kind::Completion);
    }
  }
  while (!q.empty()) {
    const SimEvent got = q.pop();
    const SimEvent want = ref.pop();
    ASSERT_EQ(got.at, want.at);
    ASSERT_EQ(got.seq, want.seq);
    ASSERT_EQ(got.id, want.id);
  }
}

TEST(EventQueue, DrainsBackToHeapMode) {
  EventQueue q;
  Rng rng(5);
  for (std::uint32_t i = 0; i < 8000; ++i) {
    q.push(1000.0 * rng.uniform_real(0.0, 1.0), i, SimEvent::Kind::Completion);
  }
  EXPECT_TRUE(q.calendar_active());
  while (q.size() > 10) (void)q.pop();
  EXPECT_FALSE(q.calendar_active())
      << "a drained queue should collapse back to the heap";
  Time last = -1.0;
  while (!q.empty()) {
    const Time at = q.pop().at;
    EXPECT_GE(at, last);
    last = at;
  }
}

TEST(EventQueue, SmallQueuesNeverLeaveHeapMode) {
  // The engine's no-release-time steady state: never more than P pending.
  EventQueue q;
  Rng rng(3);
  std::uint32_t id = 0;
  for (int round = 0; round < 2000; ++round) {
    while (q.size() < 32) {
      q.push(1000.0 * rng.uniform_real(0.0, 1.0), id++, SimEvent::Kind::Completion);
    }
    (void)q.pop();
    ASSERT_FALSE(q.calendar_active());
  }
}

}  // namespace
}  // namespace catbatch
