#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"

namespace catbatch {
namespace {

TaskGraph two_task_graph() {
  TaskGraph g;
  g.add_task(1.0, 1, "a");
  g.add_task(1.0, 2, "b");
  g.add_edge(0, 1);
  return g;
}

SimResult run(const TaskGraph& g, int procs) {
  ListScheduler sched;
  return simulate(g, sched, procs);
}

TEST(Utilization, ProfileCoversMakespan) {
  const TaskGraph g = two_task_graph();
  const SimResult r = run(g, 2);
  const auto profile = utilization_profile(g, r.schedule);
  ASSERT_FALSE(profile.empty());
  EXPECT_DOUBLE_EQ(profile.front().from, 0.0);
  EXPECT_DOUBLE_EQ(profile.back().to, r.makespan);
  // Segments are contiguous.
  for (std::size_t k = 1; k < profile.size(); ++k) {
    EXPECT_DOUBLE_EQ(profile[k].from, profile[k - 1].to);
  }
}

TEST(Utilization, StepValuesMatchSchedule) {
  const TaskGraph g = two_task_graph();
  const SimResult r = run(g, 2);
  const auto profile = utilization_profile(g, r.schedule);
  // [0,1): task a on 1 proc. [1,2): task b on 2 procs.
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_EQ(profile[0].procs_in_use, 1);
  EXPECT_EQ(profile[1].procs_in_use, 2);
}

TEST(Utilization, AverageMatchesAreaRatio) {
  const TaskGraph g = two_task_graph();
  const SimResult r = run(g, 2);
  // busy area = 1*1 + 1*2 = 3; window = 2 procs * 2 time = 4.
  EXPECT_DOUBLE_EQ(average_utilization(g, r.schedule, 2), 0.75);
}

TEST(Utilization, EmptyScheduleIsZero) {
  const TaskGraph g;
  const Schedule s;
  EXPECT_DOUBLE_EQ(average_utilization(g, s, 4), 0.0);
  EXPECT_TRUE(utilization_profile(g, s).empty());
}

TEST(Csv, ContainsHeaderAndAllTasks) {
  const TaskGraph g = two_task_graph();
  const SimResult r = run(g, 2);
  const std::string csv = schedule_to_csv(g, r.schedule);
  EXPECT_NE(csv.find("id,name,start,finish,work,procs,processors"),
            std::string::npos);
  EXPECT_NE(csv.find("a"), std::string::npos);
  EXPECT_NE(csv.find("b"), std::string::npos);
  // Two data rows + header = 3 lines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Csv, RowsSortedByStartTime) {
  const TaskGraph g = two_task_graph();
  const SimResult r = run(g, 2);
  const std::string csv = schedule_to_csv(g, r.schedule);
  EXPECT_LT(csv.find("0,a"), csv.find("1,b"));
}

TEST(Gantt, RendersOneRowPerProcessor) {
  const TaskGraph g = two_task_graph();
  const SimResult r = run(g, 2);
  const std::string gantt = ascii_gantt(g, r.schedule, 2, 40);
  EXPECT_NE(gantt.find("P  0"), std::string::npos);
  EXPECT_NE(gantt.find("P  1"), std::string::npos);
  EXPECT_NE(gantt.find('a'), std::string::npos);
  EXPECT_NE(gantt.find('b'), std::string::npos);
}

TEST(Gantt, EmptyScheduleHasPlaceholder) {
  const TaskGraph g;
  const Schedule s;
  EXPECT_EQ(ascii_gantt(g, s, 2), "(empty schedule)\n");
}

TEST(Gantt, IdleTimeRenderedAsDots) {
  // One narrow task on a 2-proc platform: processor 1 stays idle.
  TaskGraph g;
  g.add_task(1.0, 1, "x");
  const SimResult r = run(g, 2);
  const std::string gantt = ascii_gantt(g, r.schedule, 2, 20);
  EXPECT_NE(gantt.find("...."), std::string::npos);
}

// ---- Counting-mode schedules (no processor identities) --------------------

SimResult run_counting(const TaskGraph& g, int procs) {
  ListScheduler sched;
  SimOptions options;
  options.mode = ScheduleMode::Counting;
  return simulate(g, sched, procs, options);
}

TEST(Csv, CountedEntriesRenderWidthMarker) {
  const TaskGraph g = two_task_graph();
  const SimResult r = run_counting(g, 2);
  const std::string csv = schedule_to_csv(g, r.schedule);
  // The processor column carries "#<width>", not a silently empty list.
  EXPECT_NE(csv.find(",#1\n"), std::string::npos);  // task a, 1 proc
  EXPECT_NE(csv.find(",#2\n"), std::string::npos);  // task b, 2 procs
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Gantt, CountingModeRendersOccupancyRows) {
  const TaskGraph g = two_task_graph();
  const SimResult r = run_counting(g, 2);
  const std::string gantt = ascii_gantt(g, r.schedule, 2, 40);
  // The fallback is announced and every task still shows up.
  EXPECT_NE(gantt.find("counting-mode schedule"), std::string::npos);
  EXPECT_NE(gantt.find('a'), std::string::npos);
  EXPECT_NE(gantt.find('b'), std::string::npos);
  // The 2-wide task occupies both rows: 'b' appears on two lines.
  std::size_t lines_with_b = 0;
  std::istringstream in(gantt);
  for (std::string line; std::getline(in, line);) {
    if (line.find('b') != std::string::npos) ++lines_with_b;
  }
  EXPECT_EQ(lines_with_b, 2u);
}

TEST(Gantt, CountingModeMatchesIdentityCoverage) {
  // Same instance, both modes: identical per-column ink (the counted
  // fallback re-derives lowest-free-first identities, so coverage agrees).
  const TaskGraph g = two_task_graph();
  const SimResult identity = run(g, 2);
  const SimResult counted = run_counting(g, 2);
  const std::string a = ascii_gantt(g, identity.schedule, 2, 40);
  std::string b = ascii_gantt(g, counted.schedule, 2, 40);
  b.erase(0, b.find('\n') + 1);  // drop the fallback header line
  EXPECT_EQ(a, b);
}

TEST(Gantt, OverCapacityCountedScheduleThrows) {
  TaskGraph g;
  g.add_task(1.0, 2, "x");
  g.add_task(1.0, 2, "y");
  Schedule s;
  s.add_counted(0, 0.0, 1.0, 2);
  s.add_counted(1, 0.0, 1.0, 2);  // 4 procs at t=0 on a 2-proc platform
  EXPECT_THROW((void)ascii_gantt(g, s, 2, 40), std::exception);
}

}  // namespace
}  // namespace catbatch
