// Unit tests for the scenario scripts themselves (src/scenario/scenario.hpp):
// the family factories, the noise-factor purity guarantee, the random
// scenario generator's well-formedness, and the contract text the docs
// gate byte-diffs against docs/SCENARIOS.md.
#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace catbatch {
namespace {

TEST(Scenario, EmptyScenarioIsANoop) {
  const Scenario scenario;
  EXPECT_TRUE(scenario.is_noop());
  EXPECT_FALSE(scenario.has_noise());
  EXPECT_EQ(noise_factor(scenario, 0), 1.0);
  EXPECT_EQ(noise_factor(scenario, 41), 1.0);
}

TEST(Scenario, NoiseFactorIsAPureFunctionOfSeedAndId) {
  Scenario scenario;
  scenario.noise_lo = 0.5;
  scenario.noise_hi = 1.5;
  scenario.seed = 77;
  EXPECT_TRUE(scenario.has_noise());
  for (TaskId id = 0; id < 64; ++id) {
    const double factor = noise_factor(scenario, id);
    EXPECT_GE(factor, scenario.noise_lo);
    EXPECT_LE(factor, scenario.noise_hi);
    // Pure: the same (seed, id) answers the same factor, in any order.
    EXPECT_EQ(factor, noise_factor(scenario, id));
  }
  // Different seeds draw different realized instances (overwhelmingly).
  Scenario other = scenario;
  other.seed = 78;
  int diffs = 0;
  for (TaskId id = 0; id < 64; ++id) {
    if (noise_factor(scenario, id) != noise_factor(other, id)) ++diffs;
  }
  EXPECT_GT(diffs, 32);
}

TEST(Scenario, FamilyNamesArePinned) {
  const auto names = scenario_family_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "none");
  EXPECT_EQ(names[1], "crash");
  EXPECT_EQ(names[2], "sleep");
  EXPECT_EQ(names[3], "noise");
}

TEST(Scenario, CrashFamilyDropsKillsAndRestores) {
  const Scenario scenario = make_scenario("crash", 8, 10.0, 1);
  ASSERT_EQ(scenario.events.size(), 2u);
  EXPECT_FALSE(scenario.has_noise());
  EXPECT_DOUBLE_EQ(scenario.events[0].at, 2.5);
  EXPECT_EQ(scenario.events[0].capacity, 4);
  EXPECT_TRUE(scenario.events[0].crash);
  EXPECT_DOUBLE_EQ(scenario.events[1].at, 6.0);
  EXPECT_EQ(scenario.events[1].capacity, 8);  // always back to full
}

TEST(Scenario, SleepFamilyNeverKills) {
  const Scenario scenario = make_scenario("sleep", 8, 10.0, 1);
  ASSERT_EQ(scenario.events.size(), 2u);
  EXPECT_FALSE(scenario.events[0].crash);
  EXPECT_FALSE(scenario.events[1].crash);
  EXPECT_EQ(scenario.events[1].capacity, 8);
}

TEST(Scenario, NoiseFamilyHasNoPlatformEvents) {
  const Scenario scenario = make_scenario("noise", 8, 10.0, 1);
  EXPECT_TRUE(scenario.events.empty());
  EXPECT_DOUBLE_EQ(scenario.noise_lo, 0.75);
  EXPECT_DOUBLE_EQ(scenario.noise_hi, 1.25);
  EXPECT_FALSE(scenario.is_noop());

  const Scenario none = make_scenario("none", 8, 10.0, 1);
  EXPECT_TRUE(none.is_noop());
}

TEST(Scenario, UnknownFamilyThrows) {
  EXPECT_THROW((void)make_scenario("bogus", 8, 10.0, 1), ContractViolation);
}

TEST(Scenario, RandomScenariosAreWellFormedScripts) {
  Rng rng(9);
  for (int k = 0; k < 200; ++k) {
    const int procs = static_cast<int>(rng.uniform_int(1, 12));
    const Scenario scenario = random_scenario(rng, procs, 20.0);
    Time last = -1.0;
    for (const CapacityEvent& event : scenario.events) {
      EXPECT_GT(event.at, last);  // strictly increasing
      EXPECT_GE(event.capacity, 0);
      EXPECT_LE(event.capacity, procs);
      last = event.at;
    }
    if (!scenario.events.empty()) {
      EXPECT_EQ(scenario.events.back().capacity, procs);  // ends restored
    }
    if (scenario.has_noise()) {
      EXPECT_GT(scenario.noise_lo, 0.0);
      EXPECT_GE(scenario.noise_hi, scenario.noise_lo);
    }
  }
}

TEST(Scenario, ContractTextIsVersionedAndComplete) {
  const std::string text = scenario_contract_text();
  EXPECT_EQ(text.rfind("scenario-contract version 1\n", 0), 0u);
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 11);
  for (const char* term :
       {"event capacity", "event kill", "kill state machine", "crash:",
        "noise:", "no-op:", "metric degradation", "metric lost_work_ratio",
        "metric recovery_latency"}) {
    EXPECT_NE(text.find(term), std::string::npos) << term;
  }
}

}  // namespace
}  // namespace catbatch
