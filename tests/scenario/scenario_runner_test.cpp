// Engine-level semantics of capacity/kill events, the scenario runner's
// drive-path parity, the degradation metrics, and — the load-bearing
// guarantee — no-op parity: an empty scenario replays every registry
// algorithm bit-identically to a run that never heard of scenarios, on
// both clocks and both schedule modes.
#include "scenario/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/graph.hpp"
#include "scenario/scenario.hpp"
#include "sched/registry.hpp"
#include "service/client.hpp"
#include "service/hub.hpp"
#include "sim/engine.hpp"
#include "sim/session.hpp"
#include "support/check.hpp"
#include "support/json_parse.hpp"
#include "support/rng.hpp"

namespace catbatch {
namespace {

std::vector<SourceTask> unit_tasks(std::size_t n, Time work, int procs) {
  std::vector<SourceTask> tasks(n);
  for (SourceTask& task : tasks) {
    task.work = work;
    task.procs = procs;
  }
  return tasks;
}

/// Small seeded layered DAG shared by the parity suites.
TaskGraph parity_dag(std::uint64_t seed) {
  Rng rng(seed);
  TaskGraph graph;
  std::vector<TaskId> previous;
  for (int layer = 0; layer < 3; ++layer) {
    std::vector<TaskId> current;
    for (int k = 0; k < 4; ++k) {
      const TaskId id = graph.add_task(rng.uniform_real(0.5, 3.0),
                                       static_cast<int>(rng.uniform_int(1, 3)));
      for (const TaskId pred : previous) {
        if (rng.bernoulli(0.4)) graph.add_edge(pred, id);
      }
      current.push_back(id);
    }
    previous = std::move(current);
  }
  return graph;
}

TaskGraph parity_independent(std::uint64_t seed) {
  Rng rng(seed);
  TaskGraph graph;
  for (int k = 0; k < 10; ++k) {
    (void)graph.add_task(rng.uniform_real(0.5, 3.0),
                         static_cast<int>(rng.uniform_int(1, 3)));
  }
  return graph;
}

// ---- engine semantics -----------------------------------------------------

TEST(ScenarioEngine, KillLosesWorkAndRedispatchesTheTask) {
  const auto scheduler = make_scheduler("list-fifo");
  SessionEngine engine(*scheduler, 2);
  (void)engine.submit(unit_tasks(1, 4.0, 1), 0.0);
  ASSERT_TRUE(engine.task_running(0));

  const auto redispatch = engine.kill(0, 1.0);
  ASSERT_EQ(redispatch.size(), 1u);  // the resubmitted task restarts at once
  EXPECT_EQ(redispatch[0].id, 0u);
  EXPECT_DOUBLE_EQ(redispatch[0].at, 1.0);

  engine.drain();
  const SimResult result = engine.finish();
  EXPECT_DOUBLE_EQ(result.makespan, 5.0);  // 1 lost + 4 redone
  EXPECT_EQ(result.stats.kills, 1u);
  EXPECT_DOUBLE_EQ(result.stats.lost_area, 1.0);
  ASSERT_EQ(result.schedule.aborted().size(), 1u);
  EXPECT_DOUBLE_EQ(result.schedule.aborted()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(result.schedule.aborted()[0].finish, 1.0);
}

TEST(ScenarioEngine, CapacityBoundsDispatchButNeverPreempts) {
  const auto scheduler = make_scheduler("list-fifo");
  SessionEngine engine(*scheduler, 2);
  EXPECT_EQ(engine.capacity(), 2);
  (void)engine.set_capacity(1, 0.0);
  const auto at_zero = engine.submit(unit_tasks(2, 2.0, 1), 0.0);
  ASSERT_EQ(at_zero.size(), 1u);  // one slot under the reduced capacity

  // The restore runs a decision point; the waiting task starts there.
  const auto restored = engine.set_capacity(2, 1.0);
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored[0].id, 1u);
  EXPECT_DOUBLE_EQ(restored[0].at, 1.0);

  engine.drain();
  const SimResult result = engine.finish();
  EXPECT_DOUBLE_EQ(result.makespan, 3.0);
  EXPECT_EQ(result.stats.kills, 0u);  // a sleep kills nothing
  EXPECT_EQ(result.stats.capacity_changes, 2u);
}

TEST(ScenarioEngine, CompletionAtTheKillInstantWins) {
  const auto scheduler = make_scheduler("list-fifo");
  SessionEngine engine(*scheduler, 1);
  (void)engine.submit(unit_tasks(1, 2.0, 1), 0.0);
  // Internal events at or before the kill time fire first, so the task is
  // already done when the kill lands — an engine-contract error the
  // service layer pre-screens with task_running().
  EXPECT_THROW((void)engine.kill(0, 2.0), ContractViolation);
}

TEST(ScenarioEngine, CapacityCannotExceedThePlatformOrRewindTime) {
  const auto scheduler = make_scheduler("list-fifo");
  SessionEngine engine(*scheduler, 2);
  (void)engine.submit(unit_tasks(1, 1.0, 1), 0.0);
  EXPECT_THROW((void)engine.set_capacity(3, 0.0), ContractViolation);
  (void)engine.set_capacity(1, 0.5);
  EXPECT_THROW((void)engine.set_capacity(2, 0.25), ContractViolation);
}

// ---- runner metrics -------------------------------------------------------

TEST(ScenarioRunner, CrashScenarioReportsDegradationAndLostWork) {
  const TaskGraph graph = parity_dag(11);
  const Time horizon = graph.total_area() / 4.0 + graph.max_work();
  const Scenario scenario = make_scenario("crash", 4, horizon, 5);
  const ScenarioOutcome outcome = run_scenario(graph, "list-fifo", 4, scenario);
  check_scenario_feasible(outcome.result, graph, scenario, 4);

  EXPECT_EQ(outcome.metrics.capacity_changes, 2u);
  EXPECT_GE(outcome.metrics.degradation, 1.0);
  EXPECT_GT(outcome.metrics.baseline_makespan, 0.0);
  EXPECT_GE(outcome.metrics.recovery_latency, 0.0);
  if (outcome.metrics.kills > 0) {
    EXPECT_GT(outcome.metrics.lost_work_ratio, 0.0);
  }
}

TEST(ScenarioRunner, NoiseRealizesTheDeclaredInstanceDeterministically) {
  const TaskGraph graph = parity_dag(12);
  Scenario scenario;
  scenario.noise_lo = 0.8;
  scenario.noise_hi = 1.2;
  scenario.seed = 3;
  const TaskGraph realized = realized_graph(graph, scenario);
  ASSERT_EQ(realized.size(), graph.size());
  for (TaskId id = 0; id < graph.size(); ++id) {
    EXPECT_DOUBLE_EQ(realized.task(id).work,
                     graph.task(id).work * noise_factor(scenario, id));
    EXPECT_EQ(realized.task(id).procs, graph.task(id).procs);
  }
  // And the runner's outcome is reproducible bit-for-bit.
  const ScenarioOutcome a = run_scenario(graph, "catbatch", 4, scenario);
  const ScenarioOutcome b = run_scenario(graph, "catbatch", 4, scenario);
  EXPECT_EQ(a.result.makespan, b.result.makespan);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t k = 0; k < a.decisions.size(); ++k) {
    EXPECT_EQ(a.decisions[k].id, b.decisions[k].id);
    EXPECT_EQ(a.decisions[k].at, b.decisions[k].at);
    EXPECT_EQ(a.decisions[k].procs, b.decisions[k].procs);
  }
}

// ---- no-op golden parity --------------------------------------------------

void expect_noop_parity(const TaskGraph& graph, const std::string& algo,
                        int procs, ScheduleMode mode, SessionClock clock) {
  ScenarioRunOptions options;
  options.mode = mode;
  options.clock = clock;
  options.compute_baseline = false;
  const ScenarioOutcome outcome =
      run_scenario(graph, algo, procs, Scenario{}, options);

  const auto plain = make_scheduler(algo, graph);
  SimOptions sim_options;
  sim_options.mode = mode;
  const SimResult direct = simulate(graph, *plain, procs, sim_options);

  const char* label = clock == SessionClock::Simulated ? "sim" : "ext";
  EXPECT_EQ(outcome.result.makespan, direct.makespan) << algo << "/" << label;
  const auto lhs = outcome.result.schedule.entries();
  const auto rhs = direct.schedule.entries();
  ASSERT_EQ(lhs.size(), rhs.size()) << algo << "/" << label;
  for (std::size_t k = 0; k < lhs.size(); ++k) {
    EXPECT_EQ(lhs[k].id, rhs[k].id) << algo << "/" << label;
    EXPECT_EQ(lhs[k].start, rhs[k].start) << algo << "/" << label;
    EXPECT_EQ(lhs[k].finish, rhs[k].finish) << algo << "/" << label;
    EXPECT_EQ(lhs[k].processors, rhs[k].processors) << algo << "/" << label;
  }
}

TEST(ScenarioRunner, NoopScenarioIsBitIdenticalForEveryRegistryAlgorithm) {
  const TaskGraph dag = parity_dag(7);
  const TaskGraph independent = parity_independent(8);
  for (const SchedulerEntry& entry : scheduler_registry()) {
    const TaskGraph& graph = entry.independent_only ? independent : dag;
    for (const ScheduleMode mode :
         {ScheduleMode::Identity, ScheduleMode::Counting}) {
      expect_noop_parity(graph, entry.name, 4, mode,
                         SessionClock::Simulated);
      expect_noop_parity(graph, entry.name, 4, mode,
                         SessionClock::External);
    }
  }
}

// ---- drive parity ---------------------------------------------------------

TEST(ScenarioRunner, ServiceDriveMatchesTheEngineDrive) {
  const TaskGraph graph = parity_dag(21);
  const Time horizon = graph.total_area() / 4.0 + graph.max_work();
  const Scenario scenario = make_scenario("crash", 4, horizon, 9);
  for (const std::string algo : {"catbatch", "list-fifo", "easy-backfill"}) {
    for (const SessionClock clock :
         {SessionClock::Simulated, SessionClock::External}) {
      ScenarioRunOptions engine_options;
      engine_options.clock = clock;
      engine_options.compute_baseline = false;
      const ScenarioOutcome via_engine =
          run_scenario(graph, algo, 4, scenario, engine_options);

      ScenarioRunOptions service_options = engine_options;
      service_options.drive = ScenarioDrive::Service;
      const ScenarioOutcome via_service =
          run_scenario(graph, algo, 4, scenario, service_options);

      EXPECT_EQ(via_engine.result.makespan, via_service.result.makespan)
          << algo;
      ASSERT_EQ(via_engine.decisions.size(), via_service.decisions.size())
          << algo;
      for (std::size_t k = 0; k < via_engine.decisions.size(); ++k) {
        EXPECT_EQ(via_engine.decisions[k].id, via_service.decisions[k].id);
        EXPECT_EQ(via_engine.decisions[k].at, via_service.decisions[k].at);
        EXPECT_EQ(via_engine.decisions[k].procs,
                  via_service.decisions[k].procs);
      }
      EXPECT_EQ(via_engine.metrics.kills, via_service.metrics.kills) << algo;
    }
  }
}

TEST(ScenarioRunner, ServiceDriveRejectsNoiseForOfflineAlgorithms) {
  const TaskGraph graph = parity_dag(22);
  Scenario scenario;
  scenario.noise_lo = 0.9;
  scenario.noise_hi = 1.1;
  scenario.seed = 1;
  ScenarioRunOptions options;
  options.drive = ScenarioDrive::Service;
  EXPECT_THROW((void)run_scenario(graph, "rank", 4, scenario, options),
               ContractViolation);
}

// ---- concurrent scenario sessions (the catbatch_tsan_scenario filter) -----

TEST(ScenarioConcurrent, ManyConnectionsDriveFaultSessionsOnOneHub) {
  ServiceHub hub;
  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  std::atomic<int> failures{0};

  const auto worker = [&hub, &failures](int /*who*/) {
    HubClient client(hub);
    const auto ok = [&](const std::string& line, const char* expect) {
      const std::string reply = client.request(line);
      if (reply.find(expect) == std::string::npos) {
        failures.fetch_add(1);
      }
    };
    ok(R"({"type":"hello","version":1})", "welcome");
    for (int round = 0; round < kRounds; ++round) {
      ok(R"({"type":"open","session":"s","algo":"list-fifo","procs":4})",
         "opened");
      ok(R"({"type":"submit","session":"s","tasks":[{"work":2.0},)"
         R"({"work":2.0},{"work":2.0},{"work":2.0}]})",
         "decisions");
      ok(R"({"type":"capacity","session":"s","procs":2,"at":0.5})",
         "decisions");
      ok(R"({"type":"kill","session":"s","task":0,"at":1.0})", "decisions");
      ok(R"({"type":"capacity","session":"s","procs":4,"at":1.5})",
         "decisions");
      ok(R"({"type":"drain","session":"s"})", "decisions");
      ok(R"({"type":"close","session":"s"})", "closed");
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // Every client closed its connection on destruction.
  EXPECT_EQ(hub.connection_count(), 0u);
}

}  // namespace
}  // namespace catbatch
