#include "instances/examples.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/category.hpp"
#include "sim/validate.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

TEST(IntroInstance, StructureMatchesFigure1) {
  const IntroInstance intro = make_intro_instance(4);
  EXPECT_EQ(intro.graph.size(), 12u);  // 3P tasks
  ASSERT_EQ(intro.a_tasks.size(), 4u);
  // A_k -> B_k, B_k -> A_{k+1}, B_k -> C_{k+1}.
  for (int k = 0; k < 4; ++k) {
    const auto kk = static_cast<std::size_t>(k);
    EXPECT_TRUE(intro.graph.reaches(intro.a_tasks[kk], intro.b_tasks[kk]));
    if (k + 1 < 4) {
      EXPECT_TRUE(
          intro.graph.reaches(intro.b_tasks[kk], intro.a_tasks[kk + 1]));
      EXPECT_TRUE(
          intro.graph.reaches(intro.b_tasks[kk], intro.c_tasks[kk + 1]));
    }
  }
  // C_1 is a root; C's have no successors.
  EXPECT_TRUE(intro.graph.predecessors(intro.c_tasks[0]).empty());
  for (const TaskId c : intro.c_tasks) {
    EXPECT_TRUE(intro.graph.successors(c).empty());
  }
  // Shapes: A/B have length ε; C has length 1; B needs all processors.
  for (const TaskId a : intro.a_tasks) {
    EXPECT_DOUBLE_EQ(intro.graph.task(a).work, intro.epsilon);
    EXPECT_EQ(intro.graph.task(a).procs, 1);
  }
  for (const TaskId b : intro.b_tasks) {
    EXPECT_EQ(intro.graph.task(b).procs, 4);
  }
  for (const TaskId c : intro.c_tasks) {
    EXPECT_DOUBLE_EQ(intro.graph.task(c).work, 1.0);
  }
}

TEST(IntroInstance, OptimalScheduleIsFeasibleAndMatchesClosedForm) {
  for (const int P : {2, 4, 16}) {
    const IntroInstance intro = make_intro_instance(P);
    const Schedule opt = intro_optimal_schedule(intro);
    require_valid_schedule(intro.graph, opt, P);
    EXPECT_DOUBLE_EQ(opt.makespan(), intro_optimal_makespan(P, intro.epsilon));
  }
}

TEST(IntroInstance, OptimalNearLowerBound) {
  const int P = 16;
  const IntroInstance intro = make_intro_instance(P);
  const Time lb = makespan_lower_bound(intro.graph, P);
  const Time opt = intro_optimal_makespan(P, intro.epsilon);
  // Lb >= C >= 1 + 2(P-1)ε-ish; the optimal is within a small constant.
  EXPECT_LE(opt, 2.0 * lb);
}

TEST(IntroInstance, AsapToOptimalGapGrowsLinearlyWithP) {
  for (const int P : {4, 8, 32}) {
    const IntroInstance intro = make_intro_instance(P);
    const double gap = intro_asap_makespan(P, intro.epsilon) /
                       intro_optimal_makespan(P, intro.epsilon);
    EXPECT_GT(gap, P / 3.0);
    EXPECT_LE(gap, P);
  }
}

TEST(IntroInstance, ValidatesParameters) {
  EXPECT_THROW((void)make_intro_instance(0), ContractViolation);
  EXPECT_THROW((void)make_intro_instance(4, 0.0), ContractViolation);
}

TEST(PaperExample, AttributeTableMatchesFigure3) {
  const TaskGraph g = make_paper_example();
  ASSERT_EQ(g.size(), 11u);
  const auto crit = compute_criticalities(g);
  const auto cats = compute_categories(g, crit);

  struct Expected {
    const char* name;
    double t;
    int p;
    double s_inf;
    double f_inf;
    std::int64_t lambda;
    int chi;
    double zeta;
  };
  // The verbatim table from Figure 3.
  const Expected table[] = {
      {"A", 6.0, 1, 0.0, 6.0, 1, 2, 4.0},
      {"B", 2.0, 2, 0.0, 2.0, 1, 0, 1.0},
      {"C", 2.5, 1, 0.0, 2.5, 1, 1, 2.0},
      {"D", 3.0, 3, 0.0, 3.0, 1, 1, 2.0},
      {"E", 2.8, 1, 2.0, 4.8, 1, 2, 4.0},
      {"F", 0.6, 1, 3.0, 3.6, 7, -1, 3.5},
      {"G", 0.8, 3, 3.0, 3.8, 7, -1, 3.5},
      {"H", 1.2, 2, 4.8, 6.0, 5, 0, 5.0},
      {"I", 0.6, 2, 3.6, 4.2, 1, 2, 4.0},
      {"J", 0.8, 3, 6.0, 6.8, 13, -1, 6.5},
      {"K", 1.4, 3, 4.2, 5.6, 5, 0, 5.0},
  };
  for (TaskId id = 0; id < g.size(); ++id) {
    const Expected& e = table[id];
    EXPECT_EQ(g.task(id).name, e.name);
    EXPECT_DOUBLE_EQ(g.task(id).work, e.t) << e.name;
    EXPECT_EQ(g.task(id).procs, e.p) << e.name;
    EXPECT_NEAR(crit[id].earliest_start, e.s_inf, 1e-9) << e.name;
    EXPECT_NEAR(crit[id].earliest_finish, e.f_inf, 1e-9) << e.name;
    EXPECT_EQ(cats[id].longitude, e.lambda) << e.name;
    EXPECT_EQ(cats[id].power_level, e.chi) << e.name;
    EXPECT_NEAR(cats[id].value(), e.zeta, 1e-9) << e.name;
  }
}

TEST(PaperExample, CriticalPathIs6Point8) {
  EXPECT_NEAR(critical_path_length(make_paper_example()),
              paper_example_critical_path(), 1e-9);
}

}  // namespace
}  // namespace catbatch
