// Streaming ingest layer: the name interner, the direct-to-CSR builder,
// the SoaSource engine fast path, and the huge layered generator.
//
// The load-bearing property is source equivalence: simulating a DAG
// through SoaSource (engine borrows the SoA arrays, zero copies) must be
// bit-identical — makespan, per-task start/finish, ready times, stats —
// to simulating the same DAG through the classic GraphSource path, for
// every registry scheduler. The 10M-task path earns its speed purely from
// layout, never from a different schedule.
#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "core/soa_graph.hpp"
#include "instances/interner.hpp"
#include "instances/random_dags.hpp"
#include "instances/streaming.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace catbatch {
namespace {

// -- NameInterner -----------------------------------------------------------

TEST(NameInterner, DeduplicatesToTheSamePointer) {
  NameInterner interner;
  const std::string_view a = interner.intern("reduce-stage");
  const std::string_view b = interner.intern("reduce-stage");
  EXPECT_EQ(a.data(), b.data());  // same arena bytes, not just equal text
  EXPECT_EQ(interner.size(), 1u);
  EXPECT_EQ(interner.bytes(), a.size());
}

TEST(NameInterner, EmptyStringCostsNothing) {
  NameInterner interner;
  EXPECT_EQ(interner.intern(""), std::string_view{});
  EXPECT_EQ(interner.size(), 0u);
  EXPECT_EQ(interner.bytes(), 0u);
}

TEST(NameInterner, ViewsStaySableAcrossChunkGrowth) {
  NameInterner interner;
  // Force many chunks: each string is distinct and large enough that a
  // few dozen cross the chunk boundary repeatedly.
  std::vector<std::string_view> views;
  std::vector<std::string> sources;
  sources.reserve(300);
  for (int i = 0; i < 300; ++i) {
    sources.push_back("task-" + std::to_string(i) +
                      std::string(512, 'x'));  // ~518 bytes each
  }
  views.reserve(sources.size());
  for (const std::string& s : sources) views.push_back(interner.intern(s));
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(views[i], sources[i]);  // no view invalidated by later interns
  }
  EXPECT_EQ(interner.size(), sources.size());
}

TEST(NameInterner, StorageKeepsViewsAliveAfterInternerDies) {
  std::string_view view;
  std::shared_ptr<const void> storage;
  {
    NameInterner interner;
    view = interner.intern("survivor");
    storage = interner.storage();
  }
  EXPECT_EQ(view, "survivor");
}

// -- StreamingGraphBuilder --------------------------------------------------

TEST(StreamingBuilder, MatchesGraphBuiltSoaOnRandomDags) {
  for (const std::uint64_t seed : {7u, 19u, 512u}) {
    Rng rng(seed);
    RandomTaskParams params;
    params.procs.max_procs = 8;
    const TaskGraph g = random_layered_dag(rng, 300, 20, params);
    const SoaGraph from_graph = build_soa_graph(g);

    StreamingGraphBuilder builder(g.size());
    std::vector<TaskId> preds;
    for (TaskId id = 0; id < g.size(); ++id) {
      const auto p = g.predecessors(id);
      preds.assign(p.begin(), p.end());
      builder.add_task(g.task(id).work, g.task(id).procs, preds);
    }
    const SoaGraph streamed = builder.finish();

    ASSERT_EQ(streamed.size(), from_graph.size());
    EXPECT_EQ(streamed.work, from_graph.work);
    EXPECT_EQ(streamed.procs, from_graph.procs);
    EXPECT_EQ(streamed.pred_offsets, from_graph.pred_offsets);
    EXPECT_EQ(streamed.pred_data, from_graph.pred_data);
    EXPECT_EQ(streamed.succ_offsets, from_graph.succ_offsets);
    EXPECT_EQ(streamed.succ_data, from_graph.succ_data);
    EXPECT_EQ(streamed.level_offsets, from_graph.level_offsets);
    EXPECT_EQ(streamed.level_order, from_graph.level_order);
    EXPECT_EQ(streamed.max_procs, from_graph.max_procs);
    EXPECT_EQ(streamed.edge_count, from_graph.edge_count);
  }
}

TEST(StreamingBuilder, DeduplicatesAndSortsPredecessors) {
  StreamingGraphBuilder builder;
  builder.add_task(1.0, 1, {});
  builder.add_task(1.0, 1, {});
  const TaskId dups[] = {1, 0, 1, 0, 1};
  builder.add_task(2.0, 2, dups);
  const SoaGraph g = builder.finish();
  const auto preds = g.predecessors(2);
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0], 0u);
  EXPECT_EQ(preds[1], 1u);
  EXPECT_EQ(g.edge_count, 2u);
}

TEST(StreamingBuilder, RejectsForwardAndSelfReferences) {
  StreamingGraphBuilder builder;
  builder.add_task(1.0, 1, {});
  const TaskId self[] = {1};  // the task being added
  EXPECT_THROW((void)builder.add_task(1.0, 1, self), ContractViolation);
  StreamingGraphBuilder builder2;
  builder2.add_task(1.0, 1, {});
  const TaskId forward[] = {5};
  EXPECT_THROW((void)builder2.add_task(1.0, 1, forward), ContractViolation);
}

TEST(StreamingBuilder, InternsRepeatedNamesIntoOneArenaCopy) {
  StreamingGraphBuilder builder;
  builder.add_task(1.0, 1, {}, "map");
  builder.add_task(1.0, 1, {}, "map");
  builder.add_task(1.0, 1, {}, "reduce");
  const SoaGraph g = builder.finish();
  ASSERT_EQ(g.names.size(), 3u);
  EXPECT_EQ(g.name(0), "map");
  EXPECT_EQ(g.name(1), "map");
  EXPECT_EQ(g.name(0).data(), g.name(1).data());  // one arena copy
  EXPECT_EQ(g.name(2), "reduce");
  EXPECT_NE(g.name_storage, nullptr);
}

// -- SoaSource engine equivalence -------------------------------------------

TEST(SoaSource, BitIdenticalToGraphSourceForEveryRegistryScheduler) {
  Rng rng(4242);
  RandomTaskParams params;
  params.procs.max_procs = 8;
  const TaskGraph g = random_layered_dag(rng, 400, 25, params);
  const SoaGraph soa = build_soa_graph(g);
  constexpr int kProcs = 8;

  for (const SchedulerEntry& entry : scheduler_registry()) {
    if (entry.independent_only && g.edge_count() != 0) continue;
    for (const ScheduleMode mode :
         {ScheduleMode::Identity, ScheduleMode::Counting}) {
      auto graph_sched = make_scheduler(entry.name, g);
      ASSERT_NE(graph_sched, nullptr) << entry.name;
      const SimResult via_graph =
          simulate(g, *graph_sched, kProcs, SimOptions{mode});

      auto soa_sched = make_scheduler(entry.name, g);
      SoaSource source(soa);
      const SimResult via_soa =
          simulate(source, *soa_sched, kProcs, SimOptions{mode});

      EXPECT_EQ(via_graph.makespan, via_soa.makespan) << entry.name;
      EXPECT_EQ(via_graph.stats.decision_points,
                via_soa.stats.decision_points)
          << entry.name;
      EXPECT_EQ(via_graph.stats.events, via_soa.stats.events) << entry.name;
      EXPECT_EQ(via_graph.stats.busy_area, via_soa.stats.busy_area)
          << entry.name;
      EXPECT_EQ(via_graph.ready_times, via_soa.ready_times) << entry.name;
      ASSERT_EQ(via_graph.schedule.size(), via_soa.schedule.size())
          << entry.name;
      for (const ScheduledTask& e : via_graph.schedule.entries()) {
        const ScheduledTask& s = via_soa.schedule.entry_for(e.id);
        EXPECT_EQ(e.start, s.start) << entry.name;
        EXPECT_EQ(e.finish, s.finish) << entry.name;
        EXPECT_EQ(e.procs(), s.procs()) << entry.name;
      }
    }
  }
}

TEST(SoaSource, RealizedGraphRoundTrips) {
  Rng rng(99);
  RandomTaskParams params;
  const TaskGraph g = random_layered_dag(rng, 120, 10, params);
  const SoaGraph soa = build_soa_graph(g);
  SoaSource source(soa);
  const TaskGraph& realized = source.realized_graph();
  ASSERT_EQ(realized.size(), g.size());
  EXPECT_EQ(realized.edge_count(), g.edge_count());
  for (TaskId id = 0; id < g.size(); ++id) {
    EXPECT_EQ(realized.task(id).work, g.task(id).work);
    EXPECT_EQ(realized.task(id).procs, g.task(id).procs);
    const auto a = soa.predecessors(id);
    const auto b = realized.predecessors(id);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

// -- huge_layered_soa -------------------------------------------------------

TEST(HugeLayeredSoa, StructureAndDeterminism) {
  RandomTaskParams params;
  params.procs.max_procs = 16;
  Rng rng_a(1234);
  const SoaGraph a = huge_layered_soa(rng_a, 5000, 50, params);
  ASSERT_EQ(a.size(), 5000u);
  EXPECT_LE(a.level_count(), 50u);  // levels can merge, never exceed layers
  EXPECT_GE(a.level_count(), 2u);
  EXPECT_GE(a.edge_count, 5000u - 50u);  // every non-seed task has >= 1 pred
  EXPECT_LE(a.max_procs, 16);

  Rng rng_b(1234);
  const SoaGraph b = huge_layered_soa(rng_b, 5000, 50, params);
  EXPECT_EQ(a.work, b.work);
  EXPECT_EQ(a.procs, b.procs);
  EXPECT_EQ(a.pred_offsets, b.pred_offsets);
  EXPECT_EQ(a.pred_data, b.pred_data);
}

TEST(HugeLayeredSoa, SimulatesUnderBothModes) {
  RandomTaskParams params;
  params.procs.max_procs = 8;
  Rng rng(777);
  const SoaGraph soa = huge_layered_soa(rng, 2000, 40, params);
  auto sched = make_scheduler("list-fifo");
  ASSERT_NE(sched, nullptr);
  SoaSource counting_source(soa);
  const SimResult counting = simulate(counting_source, *sched, 8,
                                      SimOptions{ScheduleMode::Counting});
  EXPECT_EQ(counting.schedule.size(), soa.size());
  auto sched2 = make_scheduler("list-fifo");
  SoaSource identity_source(soa);
  const SimResult identity = simulate(identity_source, *sched2, 8);
  EXPECT_EQ(identity.makespan, counting.makespan);
}

}  // namespace
}  // namespace catbatch
