#include "instances/workloads.hpp"

#include <gtest/gtest.h>

#include "core/criticality.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

TEST(Cholesky, TaskCountMatchesClosedForm) {
  // T potrf + T(T-1)/2 trsm + T(T-1)/2 syrk + T(T-1)(T-2)/6 gemm.
  for (const int T : {1, 2, 4, 6}) {
    const TaskGraph g = cholesky_dag(T);
    const std::size_t expected =
        static_cast<std::size_t>(T + T * (T - 1) / 2 + T * (T - 1) / 2 +
                                 T * (T - 1) * (T - 2) / 6);
    EXPECT_EQ(g.size(), expected) << "T=" << T;
    g.validate();
  }
}

TEST(Cholesky, CriticalPathGrowsWithTiles) {
  const Time c2 = critical_path_length(cholesky_dag(2));
  const Time c6 = critical_path_length(cholesky_dag(6));
  EXPECT_GT(c6, c2);
}

TEST(Cholesky, FirstPotrfIsRootLastPotrfIsLate) {
  const TaskGraph g = cholesky_dag(4);
  EXPECT_TRUE(g.predecessors(0).empty());   // potrf(0,0)
  EXPECT_EQ(g.task(0).name, "potrf(0,0)");
  // The last potrf depends (transitively) on the first.
  TaskId last_potrf = kInvalidTask;
  for (TaskId id = 0; id < g.size(); ++id) {
    if (g.task(id).name == "potrf(3,3)") last_potrf = id;
  }
  ASSERT_NE(last_potrf, kInvalidTask);
  EXPECT_TRUE(g.reaches(0, last_potrf));
}

TEST(Cholesky, JitterPerturbsTimesDeterministically) {
  KernelCosts costs;
  costs.jitter = 0.2;
  const TaskGraph a = cholesky_dag(4, costs);
  const TaskGraph b = cholesky_dag(4, costs);
  bool any_off_nominal = false;
  for (TaskId id = 0; id < a.size(); ++id) {
    EXPECT_DOUBLE_EQ(a.task(id).work, b.task(id).work);
    if (a.task(id).work != 1.0 && a.task(id).work != 2.0 &&
        a.task(id).work != 4.0) {
      any_off_nominal = true;
    }
  }
  EXPECT_TRUE(any_off_nominal);
}

TEST(Lu, TaskCountMatchesClosedForm) {
  // T getrf + T(T-1) trsm + Σ (T-1-k)^2 gemm.
  for (const int T : {1, 2, 4}) {
    std::size_t gemms = 0;
    for (int k = 0; k < T; ++k) {
      gemms += static_cast<std::size_t>((T - 1 - k) * (T - 1 - k));
    }
    const TaskGraph g = lu_dag(T);
    EXPECT_EQ(g.size(),
              static_cast<std::size_t>(T) +
                  static_cast<std::size_t>(T * (T - 1)) + gemms);
    g.validate();
  }
}

TEST(Stencil, WavefrontShape) {
  const TaskGraph g = stencil_dag(3, 4);
  EXPECT_EQ(g.size(), 12u);
  g.validate();
  EXPECT_EQ(g.roots().size(), 1u);   // (0,0)
  EXPECT_EQ(g.sinks().size(), 1u);   // (2,3)
  EXPECT_EQ(g.depth(), 3u + 4u - 1u);
  // Diagonal criticality: s∞(r,c) = (r + c) * t.
  const auto crit = compute_criticalities(g);
  EXPECT_DOUBLE_EQ(crit[0].earliest_start, 0.0);
  EXPECT_DOUBLE_EQ(crit[11].earliest_start, 5.0);
}

TEST(Fft, ButterflyShape) {
  const int log2n = 3;
  const TaskGraph g = fft_dag(log2n);
  EXPECT_EQ(g.size(), 8u * 4u);  // n * (log2n + 1)
  g.validate();
  EXPECT_EQ(g.roots().size(), 8u);
  EXPECT_EQ(g.sinks().size(), 8u);
  EXPECT_EQ(g.depth(), 4u);
  // Each non-root has exactly two predecessors.
  for (TaskId id = 8; id < g.size(); ++id) {
    EXPECT_EQ(g.predecessors(id).size(), 2u);
  }
}

TEST(MapReduce, BipartiteDependencies) {
  const TaskGraph g = map_reduce_dag(5, 3);
  EXPECT_EQ(g.size(), 8u);
  g.validate();
  EXPECT_EQ(g.roots().size(), 5u);
  EXPECT_EQ(g.sinks().size(), 3u);
  for (TaskId r = 5; r < 8; ++r) {
    EXPECT_EQ(g.predecessors(r).size(), 5u);
  }
}

TEST(Montage, CanonicalShape) {
  const int images = 6;
  const TaskGraph g = montage_dag(images);
  g.validate();
  // projects + diffs + concat + bgmodel + backgrounds + imgtbl + add +
  // shrink + jpeg.
  EXPECT_EQ(g.size(), static_cast<std::size_t>(
                          images + (images - 1) + 1 + 1 + images + 1 + 3));
  EXPECT_EQ(g.roots().size(), static_cast<std::size_t>(images));
  EXPECT_EQ(g.sinks().size(), 1u);
  // The wide mAdd sits on the critical path after everything.
  TaskId add = kInvalidTask;
  for (TaskId id = 0; id < g.size(); ++id) {
    if (g.task(id).name == "add") add = id;
  }
  ASSERT_NE(add, kInvalidTask);
  for (const TaskId root : g.roots()) {
    EXPECT_TRUE(g.reaches(root, add));
  }
}

TEST(Montage, ValidatesParameters) {
  EXPECT_THROW((void)montage_dag(1), ContractViolation);
  EXPECT_THROW((void)montage_dag(4, 0), ContractViolation);
}

TEST(Workloads, AllSchedulableByCatBatch) {
  for (const TaskGraph& g :
       {cholesky_dag(5), lu_dag(4), stencil_dag(6, 6), fft_dag(4),
        map_reduce_dag(12, 4), montage_dag(8)}) {
    CatBatchScheduler sched;
    const SimResult r = simulate(g, sched, 8);
    require_valid_schedule(g, r.schedule, 8);
  }
}

TEST(Workloads, ParameterValidation) {
  EXPECT_THROW((void)cholesky_dag(0), ContractViolation);
  EXPECT_THROW((void)stencil_dag(0, 4), ContractViolation);
  EXPECT_THROW((void)fft_dag(0), ContractViolation);
  EXPECT_THROW((void)map_reduce_dag(0, 1), ContractViolation);
  KernelCosts bad;
  bad.jitter = 1.0;
  EXPECT_THROW((void)cholesky_dag(2, bad), ContractViolation);
}

}  // namespace
}  // namespace catbatch
