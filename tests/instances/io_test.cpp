#include "instances/io.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "instances/examples.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "instances/random_dags.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

TEST(Dot, ContainsNodesAndEdges) {
  const TaskGraph g = make_paper_example();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("t0"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("t=6 p=1"), std::string::npos);  // task A
}

TEST(Json, RoundTripPreservesInstance) {
  const TaskGraph g = make_paper_example();
  const std::string json = to_json(g, 4);
  const ParsedInstance parsed = instance_from_json(json);
  EXPECT_EQ(parsed.procs, 4);
  ASSERT_EQ(parsed.graph.size(), g.size());
  EXPECT_EQ(parsed.graph.edge_count(), g.edge_count());
  for (TaskId id = 0; id < g.size(); ++id) {
    EXPECT_EQ(parsed.graph.task(id), g.task(id)) << "task " << id;
    const auto a = g.successors(id);
    const auto b = parsed.graph.successors(id);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(Json, RoundTripRandomInstance) {
  Rng rng(21);
  const TaskGraph g = random_layered_dag(rng, 80, 8, RandomTaskParams{});
  const ParsedInstance parsed = instance_from_json(to_json(g, 16));
  ASSERT_EQ(parsed.graph.size(), g.size());
  for (TaskId id = 0; id < g.size(); ++id) {
    // Quantized works survive the 12-digit round trip exactly.
    EXPECT_DOUBLE_EQ(parsed.graph.task(id).work, g.task(id).work);
    EXPECT_EQ(parsed.graph.task(id).procs, g.task(id).procs);
  }
}

TEST(Json, OmitsProcsWhenUnspecified) {
  TaskGraph g;
  g.add_task(1.0, 1, "x");
  const std::string json = to_json(g);
  EXPECT_EQ(json.find("\"procs\": 0"), std::string::npos);
  const ParsedInstance parsed = instance_from_json(json);
  EXPECT_EQ(parsed.procs, 0);
}

TEST(Json, EscapesQuotesInNames) {
  TaskGraph g;
  g.add_task(1.0, 1, "we \"quote\" and \\slash");
  const ParsedInstance parsed = instance_from_json(to_json(g));
  EXPECT_EQ(parsed.graph.task(0).name, "we \"quote\" and \\slash");
}

TEST(Json, ParsesHandWrittenInstance) {
  const char* text = R"({
    "procs": 2,
    "tasks": [
      {"work": 1.5, "procs": 1, "name": "a"},
      {"work": 2, "procs": 2, "name": "b"}
    ],
    "edges": [[0, 1]]
  })";
  const ParsedInstance parsed = instance_from_json(text);
  EXPECT_EQ(parsed.procs, 2);
  ASSERT_EQ(parsed.graph.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.graph.task(0).work, 1.5);
  EXPECT_EQ(parsed.graph.successors(0).size(), 1u);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)instance_from_json("not json"), ContractViolation);
  EXPECT_THROW((void)instance_from_json("{\"tasks\": [}"),
               ContractViolation);
  EXPECT_THROW((void)instance_from_json("{\"bogus\": 1}"),
               ContractViolation);
  // Edge referencing a missing task.
  EXPECT_THROW((void)instance_from_json(
                   R"({"tasks": [{"work": 1, "procs": 1, "name": ""}],
                       "edges": [[0, 5]]})"),
               ContractViolation);
  // Task wider than the declared platform.
  EXPECT_THROW((void)instance_from_json(
                   R"({"procs": 2,
                       "tasks": [{"work": 1, "procs": 4, "name": ""}],
                       "edges": []})"),
               ContractViolation);
  // Trailing garbage.
  EXPECT_THROW((void)instance_from_json(
                   R"({"tasks": [], "edges": []} extra)"),
               ContractViolation);
}

TEST(Json, RejectsNonIntegerProcs) {
  EXPECT_THROW((void)instance_from_json(
                   R"({"tasks": [{"work": 1, "procs": 1.5, "name": ""}],
                       "edges": []})"),
               ContractViolation);
}

TEST(Json, EmptyInstanceRoundTrips) {
  const TaskGraph g;
  const ParsedInstance parsed = instance_from_json(to_json(g));
  EXPECT_EQ(parsed.graph.size(), 0u);
}

TEST(ScheduleJson, RoundTripAndReplayValidation) {
  // Serialize a handmade schedule, parse it back, compare field by field.
  Schedule s;
  s.add(1, 0.0, 2.0, {0, 1});   // B
  s.add(2, 2.0, 4.5, {0});      // C
  s.add(3, 2.0, 5.0, {1, 2, 3});  // D
  const std::string json = schedule_to_json(s, 4);
  const ParsedSchedule parsed = schedule_from_json(json);
  EXPECT_EQ(parsed.procs, 4);
  ASSERT_EQ(parsed.schedule.size(), 3u);
  for (const ScheduledTask& e : s.entries()) {
    const ScheduledTask& p = parsed.schedule.entry_for(e.id);
    EXPECT_DOUBLE_EQ(p.start, e.start);
    EXPECT_DOUBLE_EQ(p.finish, e.finish);
    EXPECT_EQ(p.processors, e.processors);
  }
}

TEST(ScheduleJson, FullPipelinePersistAndValidate) {
  const TaskGraph g = make_paper_example();
  CatBatchScheduler sched;
  const SimResult r = simulate(g, sched, 4);
  const ParsedSchedule replayed =
      schedule_from_json(schedule_to_json(r.schedule, 4));
  // The replayed schedule must still validate against the instance.
  EXPECT_EQ(validate_schedule(g, replayed.schedule, replayed.procs),
            std::nullopt);
  EXPECT_DOUBLE_EQ(replayed.schedule.makespan(), r.makespan);
}

TEST(ScheduleJson, RejectsMalformedDocuments) {
  EXPECT_THROW((void)schedule_from_json("nope"), ContractViolation);
  EXPECT_THROW((void)schedule_from_json(
                   R"({"entries": [{"id": -1, "start": 0, "finish": 1,
                       "cpus": [0]}]})"),
               ContractViolation);
  EXPECT_THROW((void)schedule_from_json(
                   R"({"entries": [{"id": 0, "start": 0, "finish": 1,
                       "cpus": [0.5]}]})"),
               ContractViolation);
  EXPECT_THROW((void)schedule_from_json(
                   R"({"bogus": []})"),
               ContractViolation);
}

TEST(ScheduleJson, EmptySchedule) {
  const Schedule s;
  const ParsedSchedule parsed = schedule_from_json(schedule_to_json(s, 2));
  EXPECT_EQ(parsed.schedule.size(), 0u);
  EXPECT_EQ(parsed.procs, 2);
}

}  // namespace
}  // namespace catbatch
