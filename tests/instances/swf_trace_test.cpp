#include "instances/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "instances/job_stream.hpp"
#include "sched/backfill.hpp"
#include "sim/validate.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

TEST(SwfTrace, ParsesHeaderFieldsAndFallbacks) {
  // Job 1: requested procs/walltime present; job 2 falls back to used
  // procs and run time; job 3 dropped (zero run); job 4 dropped (short
  // row); negative submit clamps to 0.
  std::istringstream in(
      "; Version: 2.2\n"
      ";  MaxProcs: 128\n"
      "\n"
      "1 10 3 100 8 -1 -1 16 3600 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
      "2 -5 0 50 4 -1 -1 -1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
      "3 20 0 0 4 -1 -1 4 60 -1 0 -1 -1 -1 -1 -1 -1 -1\n"
      "4 30 0 10\n");
  const TraceWorkload trace = parse_swf(in);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.dropped, 2u);
  EXPECT_EQ(trace.max_procs, 128);
  // Rows come back sorted by submit: job 2 (clamped to 0) first.
  EXPECT_DOUBLE_EQ(trace.submit[0], 0.0);
  EXPECT_DOUBLE_EQ(trace.run[0], 50.0);
  EXPECT_DOUBLE_EQ(trace.walltime[0], 50.0);  // no request -> run
  EXPECT_EQ(trace.procs[0], 4);               // no request -> used
  EXPECT_DOUBLE_EQ(trace.submit[1], 10.0);
  EXPECT_DOUBLE_EQ(trace.walltime[1], 3600.0);
  EXPECT_EQ(trace.procs[1], 16);
}

TEST(SwfTrace, WriteParseRoundTripsTheColumns) {
  Rng rng(77);
  const TraceWorkload trace = generate_swf_workload(rng, 64, 32, 0.8);
  std::ostringstream out;
  write_swf(trace, out);
  std::istringstream in(out.str());
  const TraceWorkload parsed = parse_swf(in);
  ASSERT_EQ(parsed.size(), trace.size());
  EXPECT_EQ(parsed.dropped, 0u);
  EXPECT_EQ(parsed.max_procs, trace.max_procs);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed.submit[i], trace.submit[i]);
    EXPECT_DOUBLE_EQ(parsed.run[i], trace.run[i]);
    EXPECT_DOUBLE_EQ(parsed.walltime[i], trace.walltime[i]);
    EXPECT_EQ(parsed.procs[i], trace.procs[i]);
  }
}

TEST(SwfTrace, GeneratorShapesAreArchiveLike) {
  Rng rng(5);
  const TraceWorkload trace = generate_swf_workload(rng, 500, 64, 0.7);
  ASSERT_EQ(trace.size(), 500u);
  EXPECT_EQ(trace.max_procs, 64);
  double prev = 0.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_GE(trace.submit[i], prev);  // sorted arrivals
    prev = trace.submit[i];
    EXPECT_GT(trace.run[i], 0.0);
    EXPECT_GE(trace.walltime[i], trace.run[i]);  // users pad, never trim
    EXPECT_GE(trace.procs[i], 1);
    EXPECT_LE(trace.procs[i], 64);
    EXPECT_DOUBLE_EQ(trace.run[i], std::floor(trace.run[i]));
  }
}

TEST(BatsimTrace, ParsesJobsProfilesAndDropsNonDelay) {
  const char* json = R"({
    "nb_res": 16,
    "jobs": [
      {"id": "alpha", "subtime": 5, "res": 4, "profile": "p1"},
      {"id": "beta", "subtime": 0, "res": 2, "profile": "p1",
       "walltime": 90},
      {"id": "gamma", "subtime": 7, "res": 1, "profile": "mpi"}
    ],
    "profiles": {
      "p1": {"type": "delay", "delay": 60},
      "mpi": {"type": "parallel_homogeneous", "cpu": 1e6, "com": 0}
    }
  })";
  const TraceWorkload trace = parse_batsim_json(json);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.dropped, 1u);  // non-delay profile
  EXPECT_EQ(trace.max_procs, 16);
  // Sorted by subtime: beta first.
  EXPECT_EQ(trace.names[0], "beta");
  EXPECT_DOUBLE_EQ(trace.walltime[0], 90.0);
  EXPECT_EQ(trace.names[1], "alpha");
  EXPECT_DOUBLE_EQ(trace.run[1], 60.0);
  EXPECT_DOUBLE_EQ(trace.walltime[1], 60.0);  // no walltime -> delay
  EXPECT_THROW(parse_batsim_json("not json"), ContractViolation);
}

TEST(SwfTrace, ReplayRespectsReleasesAndDeclaredWalltimes) {
  // Two jobs: the second arrives at t=100 and must not start earlier;
  // occupancy uses the actual run time, not the padded declared one.
  TraceWorkload trace;
  trace.submit = {0.0, 100.0};
  trace.run = {10.0, 10.0};
  trace.walltime = {60.0, 60.0};
  trace.procs = {2, 2};
  trace.max_procs = 4;
  EasyBackfill sched;
  const SimResult r = replay_trace(trace, sched, 4);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(0).start, 0.0);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(0).finish, 10.0);  // actual run
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(1).start, 100.0);
  EXPECT_DOUBLE_EQ(r.makespan, 110.0);
  EXPECT_EQ(r.stats.task_count, 2u);
}

TEST(SwfTrace, ReplayClampsWiderThanPlatformJobs) {
  TraceWorkload trace;
  trace.submit = {0.0};
  trace.run = {5.0};
  trace.walltime = {5.0};
  trace.procs = {64};  // wider than the platform below
  trace.max_procs = 64;
  EasyBackfill sched;
  const SimResult r = replay_trace(trace, sched, 8);
  EXPECT_DOUBLE_EQ(r.makespan, 5.0);
  EXPECT_EQ(r.schedule.entry_for(0).procs(), 8);
}

TEST(SwfTrace, ReplayChunkingIsInvisible) {
  Rng rng(13);
  const TraceWorkload trace = generate_swf_workload(rng, 300, 16, 0.9);
  EasyBackfill a;
  const SimResult big = replay_trace(trace, a, 16);
  EasyBackfill b;
  TraceReplayOptions tiny;
  tiny.chunk = 7;
  const SimResult small = replay_trace(trace, b, 16, tiny);
  // Chunking adds one (empty) decision point per extra submit() batch but
  // must not move a single start.
  EXPECT_DOUBLE_EQ(big.makespan, small.makespan);
  for (TaskId id = 0; id < trace.size(); ++id) {
    EXPECT_DOUBLE_EQ(big.schedule.entry_for(id).start,
                     small.schedule.entry_for(id).start);
  }
}

TEST(SwfTrace, ToJobStreamCarriesArrivalsAndNames) {
  Rng rng(3);
  const TraceWorkload trace = generate_swf_workload(rng, 20, 8, 0.5);
  JobStream stream = to_job_stream(trace, 10);
  ASSERT_EQ(stream.job_count(), 10u);
  for (std::size_t j = 0; j < stream.job_count(); ++j) {
    EXPECT_DOUBLE_EQ(stream.job(j).arrival, trace.submit[j]);
    EXPECT_EQ(stream.job(j).graph.size(), 1u);
    EXPECT_EQ(stream.job(j).name, "job" + std::to_string(j));
  }
}

}  // namespace
}  // namespace catbatch
