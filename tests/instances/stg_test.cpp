#include "instances/stg.hpp"

#include <gtest/gtest.h>

#include "core/criticality.hpp"
#include "instances/examples.hpp"
#include "instances/random_dags.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

TEST(Stg, RoundTripPaperExample) {
  const TaskGraph g = make_paper_example();
  const ParsedStg parsed = instance_from_stg(to_stg(g, 4));
  EXPECT_EQ(parsed.procs, 4);
  ASSERT_EQ(parsed.graph.size(), g.size());
  EXPECT_EQ(parsed.graph.edge_count(), g.edge_count());
  // Ids are remapped topologically, so compare multiset properties.
  EXPECT_DOUBLE_EQ(parsed.graph.total_area(), g.total_area());
  EXPECT_DOUBLE_EQ(critical_path_length(parsed.graph),
                   critical_path_length(g));
  EXPECT_EQ(parsed.graph.roots().size(), g.roots().size());
  EXPECT_EQ(parsed.graph.sinks().size(), g.sinks().size());
}

TEST(Stg, RoundTripRandomInstancePreservesWorksExactly) {
  Rng rng(7);
  const TaskGraph g = random_layered_dag(rng, 80, 8, RandomTaskParams{});
  const ParsedStg parsed = instance_from_stg(to_stg(g, 8));
  ASSERT_EQ(parsed.graph.size(), g.size());
  EXPECT_DOUBLE_EQ(parsed.graph.total_area(), g.total_area());
  EXPECT_DOUBLE_EQ(critical_path_length(parsed.graph),
                   critical_path_length(g));
}

TEST(Stg, ParsesHandWrittenFile) {
  const char* text =
      "# tiny instance\n"
      "3 2\n"
      "0 1.5 1 0\n"
      "1 2 2 1 0\n"
      "2 0.5 1 2 0 1\n";
  const ParsedStg parsed = instance_from_stg(text);
  EXPECT_EQ(parsed.procs, 2);
  ASSERT_EQ(parsed.graph.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed.graph.task(0).work, 1.5);
  EXPECT_EQ(parsed.graph.predecessors(2).size(), 2u);
}

TEST(Stg, CommentsAndBlankLinesIgnored) {
  const char* text =
      "\n# header comment\n\n"
      "1 4   # platform\n"
      "# task below\n"
      "0 1 1 0\n";
  const ParsedStg parsed = instance_from_stg(text);
  EXPECT_EQ(parsed.graph.size(), 1u);
  EXPECT_EQ(parsed.procs, 4);
}

TEST(Stg, RejectsMalformedFiles) {
  // Missing header.
  EXPECT_THROW((void)instance_from_stg("# only comments\n"),
               ContractViolation);
  // Wrong task count.
  EXPECT_THROW((void)instance_from_stg("2 2\n0 1 1 0\n"),
               ContractViolation);
  // Forward predecessor reference.
  EXPECT_THROW((void)instance_from_stg("2 2\n0 1 1 1 1\n1 1 1 0\n"),
               ContractViolation);
  // Non-ascending ids.
  EXPECT_THROW((void)instance_from_stg("2 2\n1 1 1 0\n0 1 1 0\n"),
               ContractViolation);
  // Task wider than platform.
  EXPECT_THROW((void)instance_from_stg("1 2\n0 1 4 0\n"),
               ContractViolation);
  // Trailing junk on a task line.
  EXPECT_THROW((void)instance_from_stg("1 2\n0 1 1 0 99\n"),
               ContractViolation);
}

TEST(Stg, EmptyInstance) {
  const ParsedStg parsed = instance_from_stg("0 1\n");
  EXPECT_EQ(parsed.graph.size(), 0u);
}

TEST(Stg, TopologicalRemappingKeepsPrecedence) {
  // Build a graph whose ids are deliberately anti-topological.
  TaskGraph g;
  const TaskId late = g.add_task(1.0, 1, "late");
  const TaskId early = g.add_task(1.0, 1, "early");
  g.add_edge(early, late);
  const ParsedStg parsed = instance_from_stg(to_stg(g, 2));
  // In the file, task 0 must be the root.
  EXPECT_TRUE(parsed.graph.predecessors(0).empty());
  EXPECT_EQ(parsed.graph.predecessors(1).size(), 1u);
}

}  // namespace
}  // namespace catbatch
