#include "instances/random_dags.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/check.hpp"

namespace catbatch {
namespace {

TEST(QuantizeTime, RoundsToBinaryGrid) {
  EXPECT_DOUBLE_EQ(quantize_time(1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantize_time(0.3) * 0x1.0p20,
                   std::round(0.3 * 0x1.0p20));
  EXPECT_DOUBLE_EQ(quantize_time(1e-9), 0x1.0p-20);  // clamps up to one tick
  EXPECT_THROW((void)quantize_time(0.0), ContractViolation);
}

TEST(QuantizeTime, ResultIsExactMultipleOfQuantum) {
  Rng rng(1);
  for (int k = 0; k < 1000; ++k) {
    const double v = quantize_time(rng.uniform_real(0.001, 100.0));
    const double ticks = v * 0x1.0p20;
    EXPECT_DOUBLE_EQ(ticks, std::round(ticks));
  }
}

TEST(DrawWork, RespectsRange) {
  Rng rng(2);
  for (const auto law :
       {WorkDistribution::Law::Uniform, WorkDistribution::Law::LogUniform,
        WorkDistribution::Law::BoundedPareto}) {
    WorkDistribution dist;
    dist.law = law;
    dist.min_work = 0.25;
    dist.max_work = 16.0;
    for (int k = 0; k < 500; ++k) {
      const Time w = draw_work(rng, dist);
      EXPECT_GE(w, dist.min_work);
      EXPECT_LE(w, dist.max_work);
    }
  }
}

TEST(DrawProcs, RespectsLaws) {
  Rng rng(3);
  ProcDistribution uniform{ProcDistribution::Law::Uniform, 8};
  ProcDistribution pow2{ProcDistribution::Law::PowerOfTwo, 8};
  ProcDistribution narrow{ProcDistribution::Law::MostlyNarrow, 8};
  int narrow_ones = 0;
  for (int k = 0; k < 500; ++k) {
    const int u = draw_procs(rng, uniform);
    EXPECT_GE(u, 1);
    EXPECT_LE(u, 8);
    const int p = draw_procs(rng, pow2);
    EXPECT_TRUE(p == 1 || p == 2 || p == 4 || p == 8) << p;
    const int n = draw_procs(rng, narrow);
    EXPECT_GE(n, 1);
    EXPECT_LE(n, 8);
    if (n == 1) ++narrow_ones;
  }
  EXPECT_GT(narrow_ones, 150);  // roughly half
}

TEST(RandomLayeredDag, ShapeAndValidity) {
  Rng rng(4);
  const TaskGraph g = random_layered_dag(rng, 100, 10, RandomTaskParams{});
  EXPECT_EQ(g.size(), 100u);
  g.validate();
  EXPECT_LE(g.depth(), 10u);
  EXPECT_GT(g.edge_count(), 0u);
}

TEST(RandomLayeredDag, SingleLayerIsIndependent) {
  Rng rng(5);
  const TaskGraph g = random_layered_dag(rng, 20, 1, RandomTaskParams{});
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(RandomOrderDag, EdgeProbabilityExtremes) {
  Rng rng(6);
  const TaskGraph none = random_order_dag(rng, 20, 0.0, RandomTaskParams{});
  EXPECT_EQ(none.edge_count(), 0u);
  const TaskGraph full = random_order_dag(rng, 20, 1.0, RandomTaskParams{});
  EXPECT_EQ(full.edge_count(), 20u * 19u / 2u);
  full.validate();
  EXPECT_EQ(full.depth(), 20u);
}

TEST(RandomSeriesParallel, SizeAndValidity) {
  Rng rng(7);
  for (const double bias : {0.0, 0.5, 1.0}) {
    const TaskGraph g = random_series_parallel(rng, 60, bias,
                                               RandomTaskParams{});
    EXPECT_EQ(g.size(), 60u);
    g.validate();
  }
}

TEST(RandomSeriesParallel, SingleSourceSingleSink) {
  Rng rng(8);
  const TaskGraph g = random_series_parallel(rng, 40, 0.5, RandomTaskParams{});
  EXPECT_EQ(g.roots().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
}

TEST(RandomForkJoin, BarriersSequenceStages) {
  Rng rng(9);
  const TaskGraph g = random_fork_join(rng, 3, 5, RandomTaskParams{});
  // fork0 + 3 * (5 + join) = 19 tasks.
  EXPECT_EQ(g.size(), 19u);
  g.validate();
  EXPECT_EQ(g.roots().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(g.depth(), 7u);  // fork, stage, join, stage, join, stage, join
}

TEST(RandomChains, IndependentChains) {
  Rng rng(10);
  const TaskGraph g = random_chains(rng, 4, 6, RandomTaskParams{});
  EXPECT_EQ(g.size(), 24u);
  EXPECT_EQ(g.roots().size(), 4u);
  EXPECT_EQ(g.sinks().size(), 4u);
  EXPECT_EQ(g.depth(), 6u);
}

TEST(RandomOutTree, EveryNonRootHasOneParent) {
  Rng rng(11);
  const TaskGraph g = random_out_tree(rng, 50, 3, RandomTaskParams{});
  EXPECT_EQ(g.size(), 50u);
  EXPECT_EQ(g.roots().size(), 1u);
  for (TaskId id = 1; id < g.size(); ++id) {
    EXPECT_EQ(g.predecessors(id).size(), 1u);
  }
}

TEST(RandomIndependent, NoEdges) {
  Rng rng(12);
  const TaskGraph g = random_independent(rng, 30, RandomTaskParams{});
  EXPECT_EQ(g.size(), 30u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(RandomDags, DeterministicForEqualSeeds) {
  Rng a(99), b(99);
  const TaskGraph ga = random_layered_dag(a, 50, 5, RandomTaskParams{});
  const TaskGraph gb = random_layered_dag(b, 50, 5, RandomTaskParams{});
  ASSERT_EQ(ga.size(), gb.size());
  for (TaskId id = 0; id < ga.size(); ++id) {
    EXPECT_EQ(ga.task(id), gb.task(id));
  }
  EXPECT_EQ(ga.edge_count(), gb.edge_count());
}

TEST(RandomDags, ParameterValidation) {
  Rng rng(1);
  EXPECT_THROW((void)random_layered_dag(rng, 0, 1, RandomTaskParams{}),
               ContractViolation);
  EXPECT_THROW((void)random_layered_dag(rng, 5, 6, RandomTaskParams{}),
               ContractViolation);
  EXPECT_THROW((void)random_order_dag(rng, 5, 1.5, RandomTaskParams{}),
               ContractViolation);
  EXPECT_THROW(
      (void)random_series_parallel(rng, 10, -0.1, RandomTaskParams{}),
      ContractViolation);
}

}  // namespace
}  // namespace catbatch
