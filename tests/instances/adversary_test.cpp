#include "instances/adversary.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

constexpr Time kEps = 0x1.0p-8;

TEST(Ipow, BasicsAndOverflowGuard) {
  EXPECT_EQ(ipow(2, 0), 1);
  EXPECT_EQ(ipow(2, 10), 1024);
  EXPECT_EQ(ipow(3, 4), 81);
  EXPECT_THROW((void)ipow(2, 63), ContractViolation);
  EXPECT_THROW((void)ipow(2, -1), ContractViolation);
}

TEST(XInstance, StructureMatchesDefinition6And7) {
  const XInstance x = make_x_instance(3, 3, kEps);
  EXPECT_EQ(static_cast<std::int64_t>(x.graph.size()), x_task_count(3, 3));
  ASSERT_EQ(x.chains.size(), 3u);
  // Chain i has 2 * K^{P-1-i} tasks.
  EXPECT_EQ(x.chains[0].tasks.size(), 18u);
  EXPECT_EQ(x.chains[1].tasks.size(), 6u);
  EXPECT_EQ(x.chains[2].tasks.size(), 2u);
  // Blue lengths K^i with one processor; reds ε with all P.
  for (const ChainIds& chain : x.chains) {
    for (std::size_t k = 0; k < chain.tasks.size(); ++k) {
      const Task& t = x.graph.task(chain.tasks[k]);
      if (k % 2 == 0) {
        EXPECT_DOUBLE_EQ(t.work, static_cast<Time>(ipow(3, chain.type)));
        EXPECT_EQ(t.procs, 1);
      } else {
        EXPECT_DOUBLE_EQ(t.work, kEps);
        EXPECT_EQ(t.procs, 3);
      }
      if (k > 0) {
        EXPECT_TRUE(x.graph.reaches(chain.tasks[k - 1], chain.tasks[k]));
      }
    }
  }
  // Chains are mutually independent.
  EXPECT_FALSE(x.graph.reaches(x.chains[0].tasks[0], x.chains[1].tasks[0]));
}

TEST(XInstance, TaskCountClosedForm) {
  // 2(K^P - 1)/(K - 1).
  EXPECT_EQ(x_task_count(3, 2), 2 * (8 - 1) / (2 - 1));
  EXPECT_EQ(x_task_count(3, 3), 2 * (27 - 1) / (3 - 1));
  EXPECT_EQ(x_task_count(1, 2), 2);
}

TEST(XInstance, LowerBoundFormula) {
  // Lemma 8: P K^{P-1} - (P-1) K^{P-2}.
  EXPECT_DOUBLE_EQ(x_optimal_lower_bound(3, 3), 3 * 9 - 2 * 3);
  EXPECT_DOUBLE_EQ(x_optimal_lower_bound(2, 2), 2 * 2 - 1 * 1);
}

TEST(YInstance, OptimalScheduleMatchesLemma9) {
  for (const int type : {0, 1, 3}) {
    const YInstance y = make_y_instance(4, type, 2, kEps);
    const Schedule opt = y_optimal_schedule(y);
    require_valid_schedule(y.graph, opt, 4);
    EXPECT_DOUBLE_EQ(opt.makespan(), y_optimal_makespan(4, type, 2, kEps));
    // Lemma 9's schedule is perfectly packed: makespan == Lb.
    EXPECT_DOUBLE_EQ(opt.makespan(), makespan_lower_bound(y.graph, 4));
  }
}

TEST(YInstance, ValidatesParameters) {
  EXPECT_THROW((void)make_y_instance(4, 4, 2, kEps), ContractViolation);
  EXPECT_THROW((void)make_y_instance(4, -1, 2, kEps), ContractViolation);
  EXPECT_THROW((void)make_y_instance(4, 0, 1, kEps), ContractViolation);
  EXPECT_THROW((void)make_y_instance(4, 0, 2, 0.0), ContractViolation);
}

TEST(ZAdversary, EmitsAllLayersAgainstAnyScheduler) {
  const int P = 3, K = 2;
  ZAdversarySource source(P, K, kEps);
  ListScheduler sched;
  const SimResult r = simulate(source, sched, P);
  EXPECT_EQ(static_cast<std::int64_t>(r.stats.task_count),
            z_task_count(P, K));
  ASSERT_EQ(source.layers().size(), 3u);
  require_valid_schedule(source.realized_graph(), r.schedule, P);
}

TEST(ZAdversary, UnlockTasksRecorded) {
  const int P = 3, K = 2;
  ZAdversarySource source(P, K, kEps);
  CatBatchScheduler sched;
  (void)simulate(source, sched, P);
  const auto& layers = source.layers();
  ASSERT_EQ(layers.size(), 3u);
  for (std::size_t ell = 0; ell + 1 < layers.size(); ++ell) {
    ASSERT_NE(layers[ell].unlock_task, kInvalidTask);
    ASSERT_GE(layers[ell].unlock_chain, 0);
    // The unlock task is the last task of its chain.
    const auto& chain =
        layers[ell].chains[static_cast<std::size_t>(layers[ell].unlock_chain)];
    EXPECT_EQ(chain.tasks.back(), layers[ell].unlock_task);
    // Next layer's roots depend on the unlock task.
    const TaskId next_root = layers[ell + 1].chains[0].tasks[0];
    EXPECT_TRUE(source.realized_graph().reaches(layers[ell].unlock_task,
                                                next_root));
  }
}

TEST(ZAdversary, OnlineMakespanRespectsLemma10) {
  for (const int P : {2, 3, 4}) {
    const int K = 2;
    for (const bool use_catbatch : {false, true}) {
      ZAdversarySource source(P, K, kEps);
      CatBatchScheduler cat;
      ListScheduler list;
      OnlineScheduler& sched =
          use_catbatch ? static_cast<OnlineScheduler&>(cat)
                       : static_cast<OnlineScheduler&>(list);
      const SimResult r = simulate(source, sched, P);
      EXPECT_GT(r.makespan, z_online_lower_bound(P, K) - 1e-9)
          << "P=" << P << " catbatch=" << use_catbatch;
    }
  }
}

TEST(ZAdversary, OfflineScheduleFeasibleAndWithinLemma11) {
  for (const int P : {2, 3, 4}) {
    const int K = 2;
    ZAdversarySource source(P, K, kEps);
    ListScheduler sched;
    (void)simulate(source, sched, P);
    const Schedule offline = z_offline_schedule(source);
    require_valid_schedule(source.realized_graph(), offline, P);
    EXPECT_LT(offline.makespan(), z_offline_upper_bound(P, K, kEps));
  }
}

TEST(ZAdversary, OfflineBeatsOnlineByRoughlyHalfP) {
  // Theorem 4's engine: the gap approaches P/2 for large K.
  const int P = 4, K = 8;
  ZAdversarySource source(P, K, 0x1.0p-10);
  ListScheduler sched;
  const SimResult online = simulate(source, sched, P);
  const Schedule offline = z_offline_schedule(source);
  const double gap = static_cast<double>(online.makespan) /
                     static_cast<double>(offline.makespan());
  EXPECT_GT(gap, P / 2.0 - 0.5);
}

TEST(ZAdversary, OfflineScheduleRequiresCompletedRun) {
  ZAdversarySource source(3, 2, kEps);
  EXPECT_THROW((void)z_offline_schedule(source), ContractViolation);
}

TEST(ZAdversary, RestartsCleanlyAcrossSimulations) {
  ZAdversarySource source(2, 2, kEps);
  ListScheduler sched;
  const SimResult first = simulate(source, sched, 2);
  const SimResult second = simulate(source, sched, 2);
  EXPECT_DOUBLE_EQ(first.makespan, second.makespan);
  EXPECT_EQ(source.layers().size(), 2u);
}

}  // namespace
}  // namespace catbatch
