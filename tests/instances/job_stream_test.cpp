#include "instances/job_stream.hpp"

#include <gtest/gtest.h>

#include "instances/workloads.hpp"
#include "sched/backfill.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/relaxed_catbatch.hpp"
#include "sim/validate.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

JobStream two_job_stream() {
  JobStream stream;
  Job first;
  first.name = "alpha";
  first.arrival = 0.0;
  first.graph.add_task(2.0, 1, "a0");
  first.graph.add_task(1.0, 1, "a1");
  first.graph.add_edge(0, 1);
  stream.add_job(std::move(first));

  Job second;
  second.name = "beta";
  second.arrival = 5.0;
  second.graph.add_task(1.0, 2, "b0");
  stream.add_job(std::move(second));
  return stream;
}

TEST(JobStream, JobsArriveAtTheirReleaseTimes) {
  JobStream stream = two_job_stream();
  ListScheduler sched;
  const SimResult r = simulate(stream, sched, 2);
  require_valid_schedule(stream.realized_graph(), r.schedule, 2);
  // alpha runs immediately; beta cannot start before its arrival.
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(stream.global_id(0, 0)).start, 0.0);
  EXPECT_GE(r.schedule.entry_for(stream.global_id(1, 0)).start, 5.0);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
}

TEST(JobStream, GlobalIdMappingIsConsistent) {
  JobStream stream = two_job_stream();
  ListScheduler sched;
  (void)simulate(stream, sched, 2);
  EXPECT_EQ(stream.global_id(0, 0), 0u);
  EXPECT_EQ(stream.global_id(0, 1), 1u);
  EXPECT_EQ(stream.global_id(1, 0), 2u);
  EXPECT_EQ(stream.job_of(0), 0u);
  EXPECT_EQ(stream.job_of(2), 1u);
  EXPECT_THROW((void)stream.global_id(1, 5), ContractViolation);
}

TEST(JobStream, PerJobMetrics) {
  JobStream stream = two_job_stream();
  ListScheduler sched;
  const SimResult r = simulate(stream, sched, 2);
  const auto metrics = per_job_metrics(stream, r, 2);
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].name, "alpha");
  EXPECT_DOUBLE_EQ(metrics[0].completion, 3.0);
  EXPECT_DOUBLE_EQ(metrics[0].response_time, 3.0);
  EXPECT_DOUBLE_EQ(metrics[0].slowdown, 1.0);  // ran unobstructed
  EXPECT_DOUBLE_EQ(metrics[1].arrival, 5.0);
  EXPECT_DOUBLE_EQ(metrics[1].response_time, 1.0);
}

TEST(JobStream, ContentionInflatesSlowdown) {
  // Two identical single-task jobs arriving together on one processor:
  // the second must wait for the first.
  JobStream stream;
  for (int j = 0; j < 2; ++j) {
    Job job;
    job.arrival = 0.0;
    job.graph.add_task(2.0, 1);
    stream.add_job(std::move(job));
  }
  ListScheduler sched;
  const SimResult r = simulate(stream, sched, 1);
  const auto metrics = per_job_metrics(stream, r, 1);
  EXPECT_DOUBLE_EQ(metrics[0].slowdown, 1.0);
  EXPECT_DOUBLE_EQ(metrics[1].slowdown, 2.0);
}

TEST(JobStream, RandomStreamRunsUnderAllStreamSafeSchedulers) {
  Rng rng(2027);
  JobStream stream = random_job_stream(rng, 8, 4.0, 16);
  EXPECT_EQ(stream.job_count(), 8u);
  RelaxedCatBatch relaxed;
  ListScheduler fifo;
  EasyBackfill easy;
  OnlineScheduler* lineup[] = {&relaxed, &fifo, &easy};
  for (OnlineScheduler* sched : lineup) {
    const SimResult r = simulate(stream, *sched, 16);
    require_valid_schedule(stream.realized_graph(), r.schedule, 16);
    for (const JobMetrics& m : per_job_metrics(stream, r, 16)) {
      EXPECT_GE(m.slowdown, 1.0 - 1e-9) << m.name;
      EXPECT_GE(m.response_time, 0.0) << m.name;
    }
  }
}

TEST(JobStream, RejectsMisuse) {
  JobStream stream;
  Job bad;
  bad.arrival = -1.0;
  bad.graph.add_task(1.0, 1);
  EXPECT_THROW(stream.add_job(std::move(bad)), ContractViolation);
  Job empty;
  empty.arrival = 0.0;
  EXPECT_THROW(stream.add_job(std::move(empty)), ContractViolation);
  EXPECT_THROW((void)stream.start(), ContractViolation);  // no jobs
}

TEST(JobStream, ArrivalsNeedNotBeSorted) {
  JobStream stream;
  Job late;
  late.arrival = 10.0;
  late.graph.add_task(1.0, 1, "late");
  stream.add_job(std::move(late));
  Job early;
  early.arrival = 0.0;
  early.graph.add_task(1.0, 1, "early");
  stream.add_job(std::move(early));
  ListScheduler sched;
  const SimResult r = simulate(stream, sched, 1);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(1).start, 0.0);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(0).start, 10.0);
}

}  // namespace
}  // namespace catbatch
