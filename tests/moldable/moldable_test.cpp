#include "moldable/allocation.hpp"
#include "moldable/moldable_graph.hpp"
#include "moldable/moldable_instances.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

MoldableGraph small_graph() {
  MoldableGraph g;
  g.add_task(8.0, 8, SpeedupModel{SpeedupLaw::Linear, 0.0}, "lin");
  g.add_task(8.0, 8, SpeedupModel{SpeedupLaw::Roofline, 2.0}, "roof");
  g.add_task(8.0, 8, SpeedupModel{SpeedupLaw::Amdahl, 0.5}, "amdahl");
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  return g;
}

TEST(MoldableGraph, BasicsAndValidation) {
  const MoldableGraph g = small_graph();
  EXPECT_EQ(g.size(), 3u);
  EXPECT_DOUBLE_EQ(g.task(0).execution_time(4), 2.0);
  EXPECT_DOUBLE_EQ(g.task(1).execution_time(4), 4.0);  // saturated
  EXPECT_EQ(g.predecessors(2).size(), 2u);
  EXPECT_THROW((void)g.task(0).execution_time(9), ContractViolation);
  MoldableGraph bad;
  EXPECT_THROW(
      (void)bad.add_task(0.0, 1, SpeedupModel{SpeedupLaw::Linear, 0.0}),
      ContractViolation);
}

TEST(MoldableGraph, CycleDetection) {
  MoldableGraph g;
  g.add_task(1.0, 1, SpeedupModel{});
  g.add_task(1.0, 1, SpeedupModel{});
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW((void)g.topological_order(), ContractViolation);
}

TEST(Allotment, PolicyChoices) {
  MoldableTask lin{16.0, 8, SpeedupModel{SpeedupLaw::Linear, 0.0}, ""};
  EXPECT_EQ(choose_allotment(lin, 16, AllotmentPolicy::Sequential), 1);
  EXPECT_EQ(choose_allotment(lin, 16, AllotmentPolicy::MaxParallel), 8);
  EXPECT_EQ(choose_allotment(lin, 16, AllotmentPolicy::MinTime), 8);
  EXPECT_EQ(choose_allotment(lin, 16, AllotmentPolicy::Efficiency50), 8);
  EXPECT_EQ(choose_allotment(lin, 16, AllotmentPolicy::SquareRoot), 4);
}

TEST(Allotment, MinTimeFindsCommOverheadSweetSpot) {
  // t(p) = 16/p + 1*(p-1): minimum at p = 4 (t = 7).
  MoldableTask task{16.0, 16, SpeedupModel{SpeedupLaw::CommOverhead, 1.0},
                    ""};
  EXPECT_EQ(choose_allotment(task, 16, AllotmentPolicy::MinTime), 4);
}

TEST(Allotment, EfficiencyThresholdStopsAtHalfEfficiency) {
  // Amdahl s=0.3: speedup(p) = 1/(0.3 + 0.7/p); speedup(p)/p >= 0.5 iff
  // 0.3p + 0.7 <= 2, i.e. p <= 4.33 -> p = 4 (strictly inside the
  // threshold, so floating point cannot flip the comparison).
  MoldableTask task{16.0, 16, SpeedupModel{SpeedupLaw::Amdahl, 0.3}, ""};
  EXPECT_EQ(choose_allotment(task, 16, AllotmentPolicy::Efficiency50), 4);
}

TEST(Allotment, RespectsTaskCapAndPlatform) {
  MoldableTask task{16.0, 4, SpeedupModel{SpeedupLaw::Linear, 0.0}, ""};
  EXPECT_EQ(choose_allotment(task, 2, AllotmentPolicy::MaxParallel), 2);
  EXPECT_EQ(choose_allotment(task, 16, AllotmentPolicy::MaxParallel), 4);
}

TEST(Rigidify, PreservesStructure) {
  const MoldableGraph g = small_graph();
  const TaskGraph rigid = rigidify(g, 8, AllotmentPolicy::MinTime);
  ASSERT_EQ(rigid.size(), 3u);
  EXPECT_EQ(rigid.edge_count(), 2u);
  EXPECT_TRUE(rigid.reaches(0, 2));
  EXPECT_TRUE(rigid.reaches(1, 2));
  // Linear task: p = 8, t = 1 (quantized exactly).
  EXPECT_EQ(rigid.task(0).procs, 8);
  EXPECT_DOUBLE_EQ(rigid.task(0).work, 1.0);
  // Roofline(2): min time at p = 2, t = 4.
  EXPECT_EQ(rigid.task(1).procs, 2);
  EXPECT_DOUBLE_EQ(rigid.task(1).work, 4.0);
}

TEST(MoldableLowerBound, TightCases) {
  MoldableGraph g;
  g.add_task(8.0, 8, SpeedupModel{SpeedupLaw::Linear, 0.0});
  // Linear task: min area 8 (any p), min time 1 at p=8; on P=8 both bounds
  // give 1.
  EXPECT_DOUBLE_EQ(moldable_lower_bound(g, 8), 1.0);
  // On P=2, allotment cap inside the bound is the platform: 8/2 vs t(2)=4.
  EXPECT_DOUBLE_EQ(moldable_lower_bound(g, 2), 4.0);
  EXPECT_DOUBLE_EQ(moldable_lower_bound(MoldableGraph{}, 4), 0.0);
}

TEST(MoldableLowerBound, ChainUsesMinTimes) {
  MoldableGraph g;
  g.add_task(8.0, 4, SpeedupModel{SpeedupLaw::Linear, 0.0});
  g.add_task(8.0, 4, SpeedupModel{SpeedupLaw::Linear, 0.0});
  g.add_edge(0, 1);
  // Critical path with min times: 2 + 2 = 4 > area bound 16/8.
  EXPECT_DOUBLE_EQ(moldable_lower_bound(g, 8), 4.0);
}

class MoldableEndToEnd : public ::testing::TestWithParam<AllotmentPolicy> {};

TEST_P(MoldableEndToEnd, RigidifyThenCatBatchIsFeasibleAndBounded) {
  // The Section 7 pipeline: local allotment -> online CatBatch. The result
  // must be feasible and can never beat the moldable lower bound.
  Rng rng(2026);
  const int P = 16;
  MoldableTaskDistribution dist;
  dist.max_procs = P;
  for (int trial = 0; trial < 4; ++trial) {
    const MoldableGraph g = random_moldable_layered(rng, 80, 8, dist);
    const TaskGraph rigid = rigidify(g, P, GetParam());
    CatBatchScheduler sched;
    const SimResult r = simulate(rigid, sched, P);
    require_valid_schedule(rigid, r.schedule, P);
    EXPECT_GE(r.makespan, moldable_lower_bound(g, P) - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, MoldableEndToEnd,
    ::testing::Values(AllotmentPolicy::Sequential,
                      AllotmentPolicy::MaxParallel, AllotmentPolicy::MinTime,
                      AllotmentPolicy::Efficiency50,
                      AllotmentPolicy::SquareRoot),
    [](const ::testing::TestParamInfo<AllotmentPolicy>& param_info) {
      std::string name = to_string(param_info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(MoldableInstances, DrawRespectsDistribution) {
  Rng rng(3);
  MoldableTaskDistribution dist;
  dist.min_seq_work = 2.0;
  dist.max_seq_work = 32.0;
  dist.max_procs = 8;
  for (int k = 0; k < 200; ++k) {
    const MoldableTask t = draw_moldable_task(rng, dist);
    EXPECT_GE(t.seq_work, 2.0);
    EXPECT_LE(t.seq_work, 32.0);
    EXPECT_GE(t.max_procs, 1);
    EXPECT_LE(t.max_procs, 8);
    t.model.validate();
  }
}

TEST(MoldableInstances, CholeskyShape) {
  const MoldableGraph g = moldable_cholesky(5, 8);
  // Same count as the rigid Cholesky for T=5.
  EXPECT_EQ(g.size(), 5u + 10u + 10u + 10u);
  (void)g.topological_order();
  // gemm tasks scale to the full platform; potrf saturates early.
  EXPECT_EQ(g.task(0).model.law, SpeedupLaw::Amdahl);
}

TEST(MoldableInstances, SequentialVsParallelAllotmentGap) {
  // On an embarrassingly parallel moldable instance, MinTime should beat
  // Sequential by roughly the platform factor.
  MoldableGraph g;
  for (int k = 0; k < 8; ++k) {
    g.add_task(8.0, 8, SpeedupModel{SpeedupLaw::Linear, 0.0});
  }
  const int P = 8;
  ListScheduler greedy_seq, greedy_par;
  const Time seq =
      simulate(rigidify(g, P, AllotmentPolicy::Sequential), greedy_seq, P)
          .makespan;
  const Time par =
      simulate(rigidify(g, P, AllotmentPolicy::MinTime), greedy_par, P)
          .makespan;
  EXPECT_DOUBLE_EQ(seq, 8.0);  // 8 unit... 8 tasks of 8 on 8 procs
  EXPECT_DOUBLE_EQ(par, 8.0);  // serialized full-width tasks: same here
  // Both hit the area lower bound — the instance is allocation-neutral
  // under linear speedup (area is conserved).
  EXPECT_DOUBLE_EQ(moldable_lower_bound(g, P), 8.0);
}

}  // namespace
}  // namespace catbatch
