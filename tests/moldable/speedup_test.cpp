#include "moldable/speedup.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/check.hpp"

namespace catbatch {
namespace {

TEST(Speedup, LinearIsPerfect) {
  const SpeedupModel m{SpeedupLaw::Linear, 0.0};
  EXPECT_DOUBLE_EQ(m.execution_time(8.0, 1), 8.0);
  EXPECT_DOUBLE_EQ(m.execution_time(8.0, 4), 2.0);
  EXPECT_DOUBLE_EQ(m.area(8.0, 4), 8.0);  // area invariant
}

TEST(Speedup, RooflineSaturates) {
  const SpeedupModel m{SpeedupLaw::Roofline, 4.0};
  EXPECT_DOUBLE_EQ(m.execution_time(8.0, 2), 4.0);
  EXPECT_DOUBLE_EQ(m.execution_time(8.0, 4), 2.0);
  EXPECT_DOUBLE_EQ(m.execution_time(8.0, 8), 2.0);  // flat beyond p̄
}

TEST(Speedup, AmdahlHasSerialFloor) {
  const SpeedupModel m{SpeedupLaw::Amdahl, 0.25};
  EXPECT_DOUBLE_EQ(m.execution_time(8.0, 1), 8.0);
  // t(p) -> s*w as p -> inf.
  EXPECT_GT(m.execution_time(8.0, 1000), 2.0);
  EXPECT_LT(m.execution_time(8.0, 1000), 2.1);
}

TEST(Speedup, CommOverheadHasSweetSpot) {
  const SpeedupModel m{SpeedupLaw::CommOverhead, 0.5};
  // t(p) = 8/p + 0.5(p-1): p=4 -> 3.5; p=8 -> 4.5 (past the sweet spot).
  EXPECT_DOUBLE_EQ(m.execution_time(8.0, 4), 3.5);
  EXPECT_DOUBLE_EQ(m.execution_time(8.0, 8), 4.5);
}

TEST(Speedup, PowerLawInterpolates) {
  const SpeedupModel m{SpeedupLaw::PowerLaw, 0.5};
  EXPECT_DOUBLE_EQ(m.execution_time(8.0, 4), 4.0);  // 8 / sqrt(4)
}

TEST(Speedup, ParameterValidation) {
  const auto time_of = [](SpeedupLaw law, double parameter, Time work,
                          int procs) {
    return SpeedupModel{law, parameter}.execution_time(work, procs);
  };
  EXPECT_THROW((void)time_of(SpeedupLaw::Roofline, 0.5, 1.0, 1),
               ContractViolation);
  EXPECT_THROW((void)time_of(SpeedupLaw::Amdahl, 1.5, 1.0, 1),
               ContractViolation);
  EXPECT_THROW((void)time_of(SpeedupLaw::CommOverhead, -1.0, 1.0, 1),
               ContractViolation);
  EXPECT_THROW((void)time_of(SpeedupLaw::PowerLaw, 0.0, 1.0, 1),
               ContractViolation);
  EXPECT_THROW((void)time_of(SpeedupLaw::Linear, 0.0, 0.0, 1),
               ContractViolation);
  EXPECT_THROW((void)time_of(SpeedupLaw::Linear, 0.0, 1.0, 0),
               ContractViolation);
}

// Monotonicity (Belkhale et al. [4]): time non-increasing and area
// non-decreasing in p — for CommOverhead only up to its sweet spot
// sqrt(w/c), which is where any sensible allocator stops.
class SpeedupMonotonicity : public ::testing::TestWithParam<SpeedupLaw> {};

TEST_P(SpeedupMonotonicity, TimeNonIncreasingAreaNonDecreasing) {
  SpeedupModel m;
  m.law = GetParam();
  switch (m.law) {
    case SpeedupLaw::Linear:
      m.parameter = 0.0;
      break;
    case SpeedupLaw::Roofline:
      m.parameter = 6.0;
      break;
    case SpeedupLaw::Amdahl:
      m.parameter = 0.15;
      break;
    case SpeedupLaw::CommOverhead:
      m.parameter = 0.01;
      break;
    case SpeedupLaw::PowerLaw:
      m.parameter = 0.7;
      break;
  }
  const double w = 16.0;
  const int limit =
      m.law == SpeedupLaw::CommOverhead
          ? static_cast<int>(std::sqrt(w / m.parameter))
          : 64;
  for (int p = 1; p < limit; ++p) {
    EXPECT_LE(m.execution_time(w, p + 1), m.execution_time(w, p) + 1e-12)
        << "p=" << p;
    EXPECT_GE(m.area(w, p + 1), m.area(w, p) - 1e-12) << "p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLaws, SpeedupMonotonicity,
    ::testing::Values(SpeedupLaw::Linear, SpeedupLaw::Roofline,
                      SpeedupLaw::Amdahl, SpeedupLaw::CommOverhead,
                      SpeedupLaw::PowerLaw),
    [](const ::testing::TestParamInfo<SpeedupLaw>& param_info) {
      std::string name = to_string(param_info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace catbatch
