// The wide net: every scheduler in the lineup against every workload
// generator on several platform sizes — one parameterized sweep that
// validates schedules, checks the universal work-conserving envelope
// T <= C + A where applicable, and pins CatBatch under Theorem 1
// everywhere.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/metrics.hpp"
#include "core/bounds.hpp"
#include "core/lmatrix.hpp"
#include "instances/random_dags.hpp"
#include "instances/workloads.hpp"
#include "sim/validate.hpp"

namespace catbatch {
namespace {

struct SweepCase {
  const char* scheduler;
  const char* workload;
  int procs;
};

TaskGraph make_workload(const std::string& name, int procs) {
  if (name == "cholesky") return cholesky_dag(6);
  if (name == "lu") return lu_dag(5);
  if (name == "stencil") return stencil_dag(10, 10);
  if (name == "fft") return fft_dag(4);
  if (name == "montage") return montage_dag(8, std::min(4, procs));
  if (name == "layered") {
    Rng rng(1);
    RandomTaskParams params;
    params.procs.max_procs = std::min(8, procs);
    return random_layered_dag(rng, 120, 10, params);
  }
  if (name == "series-parallel") {
    Rng rng(2);
    RandomTaskParams params;
    params.procs.max_procs = std::min(8, procs);
    return random_series_parallel(rng, 100, 0.5, params);
  }
  throw std::runtime_error("unknown workload " + name);
}

std::unique_ptr<OnlineScheduler> make_by_label(const std::string& label) {
  for (const NamedScheduler& named : standard_scheduler_lineup()) {
    if (named.label == label) return named.make();
  }
  return nullptr;
}

class SchedulerWorkloadSweep
    : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SchedulerWorkloadSweep, ValidAndBounded) {
  const SweepCase& c = GetParam();
  const TaskGraph g = make_workload(c.workload, c.procs);
  if (g.max_procs_required() > c.procs) {
    GTEST_SKIP() << "instance wider than platform";
  }
  const auto scheduler = make_by_label(c.scheduler);
  ASSERT_NE(scheduler, nullptr) << c.scheduler;

  const RunMetrics m = evaluate(g, *scheduler, c.procs);  // validates
  const InstanceBounds bounds = compute_bounds(g, c.procs);
  // Universal envelope: all lineup schedulers are work-conserving except
  // strict catbatch, whose barrier still keeps one task running at all
  // times within each batch -> T <= C + A holds for it too via Lemma 7
  // (2A/P + ΣL <= 2A + C... use the generous 2A + ΣL form instead).
  if (m.scheduler.rfind("catbatch(", 0) == 0) {
    EXPECT_LE(m.ratio, theorem1_bound(g.size()) + 1e-9);
  } else {
    EXPECT_LE(m.makespan, bounds.critical_path + bounds.area + 1e-9);
  }
  EXPECT_GE(m.makespan, bounds.lower_bound() - 1e-9);
  EXPECT_GT(m.utilization, 0.0);
  EXPECT_LE(m.utilization, 1.0 + 1e-12);
}

std::vector<SweepCase> all_cases() {
  std::vector<SweepCase> cases;
  const char* schedulers[] = {"catbatch",       "relaxed-catbatch",
                              "list-fifo",      "list-longest-first",
                              "list-widest-first", "easy-backfill"};
  const char* workloads[] = {"cholesky", "lu",      "stencil",
                             "fft",      "montage", "layered",
                             "series-parallel"};
  for (const char* s : schedulers) {
    for (const char* w : workloads) {
      for (const int p : {8, 16}) {
        cases.push_back(SweepCase{s, w, p});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchedulerWorkloadSweep, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      std::string name = std::string(param_info.param.scheduler) + "_" +
                         param_info.param.workload + "_P" +
                         std::to_string(param_info.param.procs);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace catbatch
