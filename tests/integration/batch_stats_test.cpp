#include "analysis/batch_stats.hpp"

#include <gtest/gtest.h>

#include "instances/examples.hpp"
#include "instances/random_dags.hpp"
#include "sim/engine.hpp"
#include "sim/svg.hpp"

namespace catbatch {
namespace {

CatBatchDecomposition run_paper_example(CatBatchScheduler& sched) {
  const TaskGraph g = make_paper_example();
  (void)simulate(g, sched, 4);
  return decompose_batches(g, sched.batch_history(), 4);
}

TEST(BatchStats, PaperExampleDecomposition) {
  CatBatchScheduler sched;
  const CatBatchDecomposition d = run_paper_example(sched);
  ASSERT_EQ(d.batches.size(), 6u);
  EXPECT_NEAR(d.makespan, 15.2, 1e-9);
  EXPECT_DOUBLE_EQ(d.total_area, 37.5);
  // Σ L_ζ over the 6 categories: 2 + 4 + 1 + 6.8 + 2 + 0.8 = 16.6.
  EXPECT_NEAR(d.sum_category_lengths, 16.6, 1e-9);
  EXPECT_NEAR(d.lemma7_bound, 2.0 * 37.5 / 4.0 + 16.6, 1e-9);
  EXPECT_LE(d.makespan, d.lemma7_bound + 1e-9);
}

TEST(BatchStats, PerBatchInvariants) {
  CatBatchScheduler sched;
  const CatBatchDecomposition d = run_paper_example(sched);
  Time area_sum = 0.0;
  for (const BatchStats& b : d.batches) {
    EXPECT_GE(b.task_count, 1u);
    EXPECT_GE(b.duration(), 0.0);
    EXPECT_LE(b.duration(), b.lemma6_bound + 1e-9);
    EXPECT_GE(b.idle_area, -1e-9);
    area_sum += b.area;
  }
  EXPECT_NEAR(area_sum, d.total_area, 1e-9);
}

TEST(BatchStats, RandomInstancesSatisfyLemma7) {
  Rng rng(123);
  for (int trial = 0; trial < 6; ++trial) {
    const TaskGraph g = random_layered_dag(rng, 120, 10, RandomTaskParams{});
    CatBatchScheduler sched;
    (void)simulate(g, sched, 8);
    const CatBatchDecomposition d =
        decompose_batches(g, sched.batch_history(), 8);
    EXPECT_LE(d.makespan, d.lemma7_bound + 1e-9);
  }
}

TEST(BatchStats, EmptyHistory) {
  const TaskGraph g;
  const CatBatchDecomposition d = decompose_batches(g, {}, 4);
  EXPECT_TRUE(d.batches.empty());
  EXPECT_DOUBLE_EQ(d.makespan, 0.0);
}

TEST(BatchStats, ColorGroupsMapTasksToBatches) {
  CatBatchScheduler sched;
  const TaskGraph g = make_paper_example();
  (void)simulate(g, sched, 4);
  const auto groups = batch_color_groups(sched.batch_history(), g.size());
  ASSERT_EQ(groups.size(), g.size());
  EXPECT_EQ(groups[1], 0u);  // B in batch 0
  EXPECT_EQ(groups[2], 1u);  // C in batch 1
  EXPECT_EQ(groups[3], 1u);  // D in batch 1
  EXPECT_EQ(groups[9], 5u);  // J in the last batch
  // Composes with the SVG renderer.
  SvgGanttOptions options;
  options.color_groups = groups;
  CatBatchScheduler rerun;
  const SimResult r = simulate(g, rerun, 4);
  const std::string svg = svg_gantt(g, r.schedule, 4, options);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(BatchStats, TableRenders) {
  CatBatchScheduler sched;
  const CatBatchDecomposition d = run_paper_example(sched);
  const std::string rendered = decomposition_table(d).render();
  EXPECT_NE(rendered.find("zeta"), std::string::npos);
  EXPECT_NE(rendered.find("total"), std::string::npos);
  EXPECT_NE(rendered.find("6.5"), std::string::npos);
}

}  // namespace
}  // namespace catbatch
