#include "analysis/flow_metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "instances/examples.hpp"
#include "instances/random_dags.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

TEST(FlowMetrics, ImmediateStartsHaveZeroWaitUnitStretch) {
  TaskGraph g;
  g.add_task(2.0, 1, "a");
  g.add_task(3.0, 1, "b");
  ListScheduler sched;
  const SimResult r = simulate(g, sched, 2);
  const FlowMetrics m = compute_flow_metrics(g, r);
  EXPECT_DOUBLE_EQ(m.mean_wait, 0.0);
  EXPECT_DOUBLE_EQ(m.max_wait, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_stretch, 1.0);
  EXPECT_DOUBLE_EQ(m.max_stretch, 1.0);
}

TEST(FlowMetrics, QueueingShowsUpAsWait) {
  // Two unit tasks, one processor: the second waits exactly 1.
  TaskGraph g;
  g.add_task(1.0, 1);
  g.add_task(1.0, 1);
  ListScheduler sched;
  const SimResult r = simulate(g, sched, 1);
  const FlowMetrics m = compute_flow_metrics(g, r);
  EXPECT_DOUBLE_EQ(m.max_wait, 1.0);
  EXPECT_DOUBLE_EQ(m.mean_wait, 0.5);
  EXPECT_DOUBLE_EQ(m.max_stretch, 2.0);
}

TEST(FlowMetrics, ReadyTimesFollowPrecedence) {
  const TaskGraph g = make_paper_example();
  CatBatchScheduler sched;
  const SimResult r = simulate(g, sched, 4);
  ASSERT_EQ(r.ready_times.size(), g.size());
  // Roots ready at 0.
  for (const TaskId root : g.roots()) {
    EXPECT_DOUBLE_EQ(r.ready_times[root], 0.0);
  }
  // Non-roots become ready exactly when their last predecessor finishes.
  for (TaskId id = 0; id < g.size(); ++id) {
    if (g.predecessors(id).empty()) continue;
    Time latest = 0.0;
    for (const TaskId pred : g.predecessors(id)) {
      latest = std::max(latest, r.schedule.entry_for(pred).finish);
    }
    EXPECT_DOUBLE_EQ(r.ready_times[id], latest) << "task " << id;
  }
}

TEST(FlowMetrics, BarrierInflatesCatBatchWaits) {
  // The paper's practicality conjecture in flow terms: on a benign DAG the
  // strict batch barrier produces strictly more waiting than greedy.
  Rng rng(11);
  const TaskGraph g = random_fork_join(rng, 4, 10, RandomTaskParams{});
  CatBatchScheduler cat;
  ListScheduler fifo;
  const FlowMetrics cat_flow =
      compute_flow_metrics(g, simulate(g, cat, 8));
  const FlowMetrics fifo_flow =
      compute_flow_metrics(g, simulate(g, fifo, 8));
  EXPECT_GE(cat_flow.mean_wait, fifo_flow.mean_wait - 1e-9);
}

TEST(FlowMetrics, RejectsForeignResult) {
  TaskGraph g1, g2;
  g1.add_task(1.0, 1);
  g2.add_task(1.0, 1);
  g2.add_task(1.0, 1);
  ListScheduler sched;
  const SimResult r = simulate(g1, sched, 1);
  EXPECT_THROW((void)compute_flow_metrics(g2, r), ContractViolation);
}

TEST(FlowMetrics, EmptyInstance) {
  const TaskGraph g;
  ListScheduler sched;
  const SimResult r = simulate(g, sched, 1);
  const FlowMetrics m = compute_flow_metrics(g, r);
  EXPECT_EQ(m.task_count, 0u);
}

TEST(FlowMetrics, FlowFieldsTrackResponseTime) {
  // One processor, two unit tasks: flows are 1 and 2.
  TaskGraph g;
  g.add_task(1.0, 1);
  g.add_task(1.0, 1);
  ListScheduler sched;
  const SimResult r = simulate(g, sched, 1);
  const FlowMetrics m = compute_flow_metrics(g, r);
  EXPECT_DOUBLE_EQ(m.mean_flow, 1.5);
  EXPECT_DOUBLE_EQ(m.max_flow, 2.0);
}

TEST(FlowMetrics, ZeroWorkTasksAreExcludedFromStretch) {
  // Regression: stretch divides by work, and a zero-work entry used to
  // turn mean/max stretch into inf. The policy (flow_metrics.hpp) excludes
  // such tasks from the stretch aggregates — wait and flow still count —
  // and reports the exclusion in stretch_skipped.
  TaskGraph g;
  g.add_task(2.0, 1, "a");
  g.add_task(3.0, 1, "b");
  ListScheduler sched;
  const SimResult r = simulate(g, sched, 2);
  const Time works[] = {2.0, 0.0};  // task b's work recorded as zero
  const FlowMetrics m = compute_flow_metrics(std::span<const Time>(works), r);
  EXPECT_EQ(m.task_count, 2u);
  EXPECT_EQ(m.stretch_skipped, 1u);
  EXPECT_TRUE(std::isfinite(m.mean_stretch));
  EXPECT_TRUE(std::isfinite(m.max_stretch));
  EXPECT_DOUBLE_EQ(m.mean_stretch, 1.0);  // task a alone
  EXPECT_DOUBLE_EQ(m.max_stretch, 1.0);
  EXPECT_DOUBLE_EQ(m.mean_flow, 2.5);  // flow still counts both
  EXPECT_DOUBLE_EQ(m.max_flow, 3.0);
}

TEST(FlowMetrics, SpanOverloadMatchesGraphOverload) {
  Rng rng(21);
  const TaskGraph g = random_layered_dag(rng, 80, 8, RandomTaskParams{});
  ListScheduler sched;
  const SimResult r = simulate(g, sched, 8);
  const FlowMetrics from_graph = compute_flow_metrics(g, r);
  std::vector<Time> works(g.size());
  for (TaskId id = 0; id < g.size(); ++id) works[id] = g.task(id).work;
  const FlowMetrics from_span =
      compute_flow_metrics(std::span<const Time>(works), r);
  EXPECT_DOUBLE_EQ(from_span.mean_wait, from_graph.mean_wait);
  EXPECT_DOUBLE_EQ(from_span.mean_flow, from_graph.mean_flow);
  EXPECT_DOUBLE_EQ(from_span.mean_stretch, from_graph.mean_stretch);
  EXPECT_DOUBLE_EQ(from_span.max_stretch, from_graph.max_stretch);
  EXPECT_EQ(from_span.stretch_skipped, 0u);
}

}  // namespace
}  // namespace catbatch
