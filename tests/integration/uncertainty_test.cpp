// The execution-time-uncertainty extension (paper Section 7, first future
// direction): the engine simulates actual durations that differ from the
// declared ones. Strict CatBatch's category accounting assumes exact times;
// RelaxedCatBatch only uses categories as priorities and remains safe.
#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "instances/random_dags.hpp"
#include "sched/relaxed_catbatch.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"

namespace catbatch {
namespace {

/// Wraps a static graph; declares `estimate_factor`-scaled durations while
/// simulating the true ones.
class NoisySource final : public InstanceSource {
 public:
  NoisySource(const TaskGraph& graph, double max_error, std::uint64_t seed)
      : graph_(graph), max_error_(max_error), seed_(seed) {}

  std::vector<SourceTask> start() override {
    Rng rng(seed_);
    std::vector<SourceTask> out;
    for (TaskId id = 0; id < graph_.size(); ++id) {
      const Task& t = graph_.task(id);
      SourceTask st;
      st.work = t.work;
      // Declared estimate off by up to ±max_error (relative), quantized so
      // it stays a legal positive time.
      const double factor =
          rng.uniform_real(1.0 - max_error_, 1.0 + max_error_);
      st.declared_work = quantize_time(static_cast<double>(t.work) * factor);
      st.procs = t.procs;
      st.name = t.name;
      const auto preds = graph_.predecessors(id);
      st.predecessors.assign(preds.begin(), preds.end());
      out.push_back(std::move(st));
    }
    return out;
  }

  std::vector<SourceTask> on_complete(TaskId, Time) override { return {}; }
  const TaskGraph& realized_graph() const override { return graph_; }

 private:
  const TaskGraph& graph_;
  double max_error_;
  std::uint64_t seed_;
};

TEST(Uncertainty, RelaxedCatBatchSurvivesNoisyEstimates) {
  Rng rng(71);
  const int P = 8;
  for (const double noise : {0.1, 0.5, 0.9}) {
    const TaskGraph g = random_layered_dag(rng, 100, 8, RandomTaskParams{});
    NoisySource source(g, noise, 1234);
    RelaxedCatBatch sched;
    const SimResult r = simulate(source, sched, P);
    require_valid_schedule(g, r.schedule, P);
    EXPECT_GE(r.makespan, makespan_lower_bound(g, P) - 1e-9);
  }
}

TEST(Uncertainty, ListSchedulingIsOblivousToEstimates) {
  // FIFO never reads the declared time: identical schedules with and
  // without noise.
  Rng rng(73);
  const TaskGraph g = random_order_dag(rng, 80, 0.04, RandomTaskParams{});
  ListScheduler clean_sched;
  const SimResult clean = simulate(g, clean_sched, 8);
  NoisySource source(g, 0.9, 99);
  ListScheduler noisy_sched;
  const SimResult noisy = simulate(source, noisy_sched, 8);
  ASSERT_EQ(clean.schedule.size(), noisy.schedule.size());
  for (TaskId id = 0; id < g.size(); ++id) {
    EXPECT_DOUBLE_EQ(clean.schedule.entry_for(id).start,
                     noisy.schedule.entry_for(id).start);
  }
}

TEST(Uncertainty, MakespanDegradesGracefullyWithNoise) {
  // More estimate error should not explode the makespan for the relaxed
  // scheduler (it never idles, so T <= C + A always holds).
  Rng rng(79);
  const int P = 8;
  const TaskGraph g = random_layered_dag(rng, 120, 10, RandomTaskParams{});
  const InstanceBounds bounds = compute_bounds(g, P);
  for (const double noise : {0.0, 0.3, 0.6, 0.9}) {
    NoisySource source(g, noise, 7);
    RelaxedCatBatch sched;
    const SimResult r = simulate(source, sched, P);
    EXPECT_LE(r.makespan, bounds.critical_path + bounds.area + 1e-9)
        << "noise=" << noise;
  }
}

TEST(Uncertainty, DeclaredWorkNeverLeaksActual) {
  // The scheduler must be driven purely by declared values: two sources
  // with identical declarations but different actual durations must produce
  // the same *selection order* at time zero (same first picks).
  TaskGraph g1, g2;
  g1.add_task(10.0, 1, "x");
  g1.add_task(1.0, 1, "y");
  g2.add_task(1.0, 1, "x");
  g2.add_task(10.0, 1, "y");

  class FixedDeclared final : public InstanceSource {
   public:
    explicit FixedDeclared(const TaskGraph& g) : graph_(g) {}
    std::vector<SourceTask> start() override {
      std::vector<SourceTask> out;
      for (TaskId id = 0; id < graph_.size(); ++id) {
        SourceTask st;
        st.work = graph_.task(id).work;
        st.declared_work = 5.0;  // identical declarations
        st.procs = 1;
        out.push_back(std::move(st));
      }
      return out;
    }
    std::vector<SourceTask> on_complete(TaskId, Time) override { return {}; }
    const TaskGraph& realized_graph() const override { return graph_; }

   private:
    const TaskGraph& graph_;
  };

  FixedDeclared s1(g1), s2(g2);
  RelaxedCatBatch sched;
  const SimResult r1 = simulate(s1, sched, 1);
  const SimResult r2 = simulate(s2, sched, 1);
  // Same category (declared 5.0 both), same arrival order -> task 0 first.
  EXPECT_DOUBLE_EQ(r1.schedule.entry_for(0).start, 0.0);
  EXPECT_DOUBLE_EQ(r2.schedule.entry_for(0).start, 0.0);
}

}  // namespace
}  // namespace catbatch
