// End-to-end walk of the paper's running example (Figures 3-6): attributes,
// category lengths, L-matrix, CatBatch execution trace, and the competitive
// guarantee — all from one pipeline.
#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/lmatrix.hpp"
#include "instances/examples.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "sim/validate.hpp"

namespace catbatch {
namespace {

class PaperExamplePipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = make_paper_example();
    result_ = simulate(graph_, scheduler_, 4);
  }

  TaskGraph graph_;
  CatBatchScheduler scheduler_;
  SimResult result_;
};

TEST_F(PaperExamplePipeline, ScheduleIsValid) {
  require_valid_schedule(graph_, result_.schedule, 4);
}

TEST_F(PaperExamplePipeline, MakespanMatchesFigure6) {
  EXPECT_NEAR(result_.makespan, 15.2, 1e-9);
}

TEST_F(PaperExamplePipeline, RatioWithinTheorem1) {
  const Time lb = makespan_lower_bound(graph_, 4);
  // Lb = max(A/P, C) = max(37.5/4, 6.8) = 9.375 (the area bound binds).
  EXPECT_NEAR(lb, 9.375, 1e-9);
  const double ratio =
      static_cast<double>(result_.makespan) / static_cast<double>(lb);
  EXPECT_LE(ratio, theorem1_bound(11) + 1e-9);  // log2(11)+3 ≈ 6.46
  EXPECT_NEAR(ratio, 15.2 / 9.375, 1e-6);
}

TEST_F(PaperExamplePipeline, TasksReadyBeforeTheirBatchStarts) {
  // Corollary 2, end to end: every task's predecessors complete no later
  // than its batch's start time.
  for (const BatchRecord& batch : scheduler_.batch_history()) {
    for (const TaskId id : batch.tasks) {
      for (const TaskId pred : graph_.predecessors(id)) {
        EXPECT_LE(result_.schedule.entry_for(pred).finish,
                  batch.started + 1e-12);
      }
    }
  }
}

TEST_F(PaperExamplePipeline, BatchLengthsWithinCategoryLengths) {
  // No task exceeds the L_ζ of its category (Lemma 3), checked on the real
  // schedule.
  const Time critical = critical_path_length(graph_);
  for (const BatchRecord& batch : scheduler_.batch_history()) {
    const Time len = category_length(batch.category, critical);
    for (const TaskId id : batch.tasks) {
      EXPECT_LE(graph_.task(id).work, len + 1e-12);
    }
  }
}

TEST_F(PaperExamplePipeline, GanttAndCsvRender) {
  const std::string gantt = ascii_gantt(graph_, result_.schedule, 4);
  EXPECT_NE(gantt.find('A'), std::string::npos);
  EXPECT_NE(gantt.find('K'), std::string::npos);
  const std::string csv = schedule_to_csv(graph_, result_.schedule);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 12);  // header + 11
}

TEST_F(PaperExamplePipeline, UtilizationProfileIsConsistent) {
  const auto profile = utilization_profile(graph_, result_.schedule);
  Time weighted = 0.0;
  for (const UtilizationStep& step : profile) {
    EXPECT_GE(step.procs_in_use, 0);
    EXPECT_LE(step.procs_in_use, 4);
    weighted += (step.to - step.from) * step.procs_in_use;
  }
  EXPECT_NEAR(weighted, graph_.total_area(), 1e-9);
}

}  // namespace
}  // namespace catbatch
