// Empirical validation of the paper's main theorems over randomized
// instance families: CatBatch's measured ratio T/Lb never exceeds
// log2(n) + 3 (Theorem 1) nor log2(M/m) + 6 (Theorem 2).
#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "core/lmatrix.hpp"
#include "instances/random_dags.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"

namespace catbatch {
namespace {

struct FamilyCase {
  const char* name;
  TaskGraph (*make)(Rng&, std::size_t, const RandomTaskParams&);
};

TaskGraph make_layered(Rng& rng, std::size_t n, const RandomTaskParams& p) {
  return random_layered_dag(rng, n, std::max<std::size_t>(2, n / 10), p);
}
TaskGraph make_order(Rng& rng, std::size_t n, const RandomTaskParams& p) {
  return random_order_dag(rng, n, 3.0 / static_cast<double>(n), p);
}
TaskGraph make_sp(Rng& rng, std::size_t n, const RandomTaskParams& p) {
  return random_series_parallel(rng, n, 0.6, p);
}
TaskGraph make_tree(Rng& rng, std::size_t n, const RandomTaskParams& p) {
  return random_out_tree(rng, n, 4, p);
}
TaskGraph make_indep(Rng& rng, std::size_t n, const RandomTaskParams& p) {
  return random_independent(rng, n, p);
}
TaskGraph make_chains(Rng& rng, std::size_t n, const RandomTaskParams& p) {
  return random_chains(rng, std::max<std::size_t>(2, n / 12), 12, p);
}

class TheoremBoundsByFamily : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(TheoremBoundsByFamily, Theorem1And2HoldAcrossSeeds) {
  const FamilyCase& family = GetParam();
  const int P = 16;
  RandomTaskParams params;
  params.procs.max_procs = P;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 7919);
    const TaskGraph g = family.make(rng, 150, params);
    const InstanceBounds bounds = compute_bounds(g, P);
    CatBatchScheduler sched;
    const SimResult r = simulate(g, sched, P);
    require_valid_schedule(g, r.schedule, P);
    const double ratio = static_cast<double>(r.makespan) /
                         static_cast<double>(bounds.lower_bound());
    EXPECT_LE(ratio, theorem1_bound(g.size()) + 1e-9)
        << family.name << " seed " << seed;
    EXPECT_LE(ratio, theorem2_bound(bounds.max_work, bounds.min_work) + 1e-9)
        << family.name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, TheoremBoundsByFamily,
    ::testing::Values(FamilyCase{"layered", make_layered},
                      FamilyCase{"order", make_order},
                      FamilyCase{"series_parallel", make_sp},
                      FamilyCase{"tree", make_tree},
                      FamilyCase{"independent", make_indep},
                      FamilyCase{"chains", make_chains}),
    [](const ::testing::TestParamInfo<FamilyCase>& param_info) {
      return param_info.param.name;
    });

TEST(TheoremBounds, Theorem2TightensWhenLengthsAreUniform) {
  // Equal-length tasks: M/m = 1 -> ratio <= 6 regardless of n.
  Rng rng(5);
  const int P = 8;
  RandomTaskParams params;
  params.work.min_work = 1.0;
  params.work.max_work = 1.0;
  params.procs.max_procs = P;
  for (int trial = 0; trial < 6; ++trial) {
    const TaskGraph g = random_layered_dag(rng, 300, 20, params);
    CatBatchScheduler sched;
    const SimResult r = simulate(g, sched, P);
    const Time lb = makespan_lower_bound(g, P);
    EXPECT_LE(static_cast<double>(r.makespan / lb), 6.0 + 1e-9);
  }
}

TEST(TheoremBounds, RatioScalesGracefullyWithN) {
  // Sanity on growth: the measured worst ratio over a size sweep must stay
  // under the Theorem 1 curve at every size.
  const int P = 16;
  RandomTaskParams params;
  params.procs.max_procs = P;
  for (const std::size_t n : {16u, 64u, 256u, 1024u}) {
    Rng rng(n);
    const TaskGraph g = make_layered(rng, n, params);
    CatBatchScheduler sched;
    const SimResult r = simulate(g, sched, P);
    const Time lb = makespan_lower_bound(g, P);
    EXPECT_LE(static_cast<double>(r.makespan / lb),
              theorem1_bound(n) + 1e-9);
  }
}

TEST(TheoremBounds, WideTaskHeavyInstancesStillBounded) {
  // Stress the P/2-threshold argument of Lemma 6 with many wide tasks.
  Rng rng(17);
  const int P = 8;
  RandomTaskParams params;
  params.procs.law = ProcDistribution::Law::Uniform;
  params.procs.max_procs = P;  // half the draws are wider than P/2
  for (int trial = 0; trial < 6; ++trial) {
    const TaskGraph g = random_layered_dag(rng, 120, 10, params);
    CatBatchScheduler sched;
    const SimResult r = simulate(g, sched, P);
    require_valid_schedule(g, r.schedule, P);
    const Time lb = makespan_lower_bound(g, P);
    EXPECT_LE(static_cast<double>(r.makespan / lb),
              theorem1_bound(g.size()) + 1e-9);
  }
}

}  // namespace
}  // namespace catbatch
