// Determinism contract of the parallel ingest pipeline (ISSUE 8): the
// parallel SoA build, the parallel criticality sweep, and parallel /
// chunked engine ingest are bit-identical to their serial references for
// every {threads, chunk} — same CSR arrays, same IEEE-754 criticalities,
// same schedules on the golden corpus, same fuzz fingerprint. The
// ParallelIngest* filter is the catbatch_tsan_parallel_ingest sanitizer
// target.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/soa_graph.hpp"
#include "instances/random_dags.hpp"
#include "instances/streaming.hpp"
#include "qa/fuzzer.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace catbatch {
namespace {

constexpr int kProcs = 8;

TaskGraph layered_instance(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  RandomTaskParams params;
  params.procs.max_procs = kProcs;
  return random_layered_dag(rng, n, std::max<std::size_t>(2, n / 16), params);
}

void expect_same_soa(const SoaGraph& a, const SoaGraph& b) {
  EXPECT_EQ(a.pred_offsets, b.pred_offsets);
  EXPECT_EQ(a.pred_data, b.pred_data);
  EXPECT_EQ(a.succ_offsets, b.succ_offsets);
  EXPECT_EQ(a.succ_data, b.succ_data);
  EXPECT_EQ(a.level_offsets, b.level_offsets);
  EXPECT_EQ(a.level_order, b.level_order);
  EXPECT_EQ(a.max_procs, b.max_procs);
  EXPECT_EQ(a.ids_topological, b.ids_topological);
}

void expect_same_schedule(const Schedule& a, const Schedule& b) {
  const auto ea = a.entries();
  const auto eb = b.entries();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t k = 0; k < ea.size(); ++k) {
    EXPECT_EQ(ea[k].id, eb[k].id) << "entry " << k;
    EXPECT_EQ(ea[k].start, eb[k].start) << "entry " << k;
    EXPECT_EQ(ea[k].finish, eb[k].finish) << "entry " << k;
    EXPECT_EQ(ea[k].processors, eb[k].processors) << "entry " << k;
    EXPECT_EQ(ea[k].width, eb[k].width) << "entry " << k;
  }
}

TEST(ParallelIngest, SoaBuildIsThreadCountInvariant) {
  const TaskGraph graph = layered_instance(4096, 31);
  const SoaGraph serial = build_soa_graph(graph);
  EXPECT_TRUE(serial.ids_topological);
  for (const int threads : {2, 8}) {
    for (const std::size_t chunk : {std::size_t{64}, std::size_t{4096}}) {
      const SoaGraph par = build_soa_graph(
          graph, /*with_names=*/false,
          ParallelOptions{}.with_threads(threads).with_chunk(chunk));
      expect_same_soa(serial, par);
    }
  }
}

TEST(ParallelIngest, CriticalitySweepIsThreadCountInvariant) {
  const SoaGraph soa = build_soa_graph(layered_instance(4096, 32));
  const CriticalityArrays serial = compute_criticalities(soa);
  for (const int threads : {2, 8}) {
    for (const std::size_t chunk : {std::size_t{16}, std::size_t{4096}}) {
      const CriticalityArrays par = compute_criticalities(
          soa, ParallelOptions{}.with_threads(threads).with_chunk(chunk));
      // Bit-identical, not approximately equal: every path must do the
      // same IEEE-754 arithmetic (the recurrence's unique fixpoint).
      ASSERT_EQ(serial.earliest_start, par.earliest_start);
      ASSERT_EQ(serial.earliest_finish, par.earliest_finish);
    }
  }
}

TEST(ParallelIngest, BfsFallbackHandlesNonTopologicalIds) {
  // Edges from higher to lower ids force the BFS level path (the id-order
  // fast scans require every pred < id); parallel must still match serial.
  TaskGraph graph;
  const TaskId sink = graph.add_task(2.0, 1);
  const TaskId mid = graph.add_task(3.0, 2);
  const TaskId root = graph.add_task(1.0, 1);
  graph.add_edge(root, mid);
  graph.add_edge(mid, sink);
  for (std::size_t k = 0; k < 64; ++k) {
    const TaskId leaf = graph.add_task(1.0 + static_cast<double>(k % 5), 1);
    graph.add_edge(mid, leaf);
  }
  const SoaGraph serial = build_soa_graph(graph);
  EXPECT_FALSE(serial.ids_topological);
  const ParallelOptions par = ParallelOptions{}.with_threads(8).with_chunk(8);
  expect_same_soa(serial, build_soa_graph(graph, false, par));
  const CriticalityArrays a = compute_criticalities(serial);
  const CriticalityArrays b = compute_criticalities(serial, par);
  EXPECT_EQ(a.earliest_start, b.earliest_start);
  EXPECT_EQ(a.earliest_finish, b.earliest_finish);
}

TEST(ParallelIngest, GoldenCorpusSchedulesMatchSerialIdentityRuns) {
  // The golden-schedule corpus (standard_families(120, 8), seeds 7/8)
  // replayed through the parallel SoA build + parallel engine ingest must
  // reproduce the serial identity schedules decision-for-decision.
  const auto families = standard_families(120, kProcs);
  const ParallelOptions par = ParallelOptions{}.with_threads(8).with_chunk(64);
  for (const auto& family : families) {
    for (const std::uint64_t seed : {7u, 8u}) {
      Rng rng(seed);
      const TaskGraph graph = family.make(rng);
      for (const char* name : {"catbatch", "list-fifo"}) {
        const auto ref_sched = make_scheduler(name, graph);
        ASSERT_NE(ref_sched, nullptr) << name;
        const SimResult reference = simulate(graph, *ref_sched, kProcs);

        const SoaGraph soa = build_soa_graph(graph, false, par);
        SoaSource source(soa);
        const auto par_sched = make_scheduler(name, graph);
        const SimResult parallel =
            simulate(source, *par_sched, kProcs, SimOptions{}.with_parallel(par));
        ASSERT_EQ(reference.makespan, parallel.makespan)
            << family.label << " seed=" << seed << " " << name;
        expect_same_schedule(reference.schedule, parallel.schedule);
      }
    }
  }
}

TEST(ParallelIngest, ChunkedIngestIsThreadCountInvariant) {
  // Incremental freeze_chunk() submission (FIFO policy: CatBatch's
  // Corollary 2 contract rejects same-instant same-category arrivals, and
  // the property under test is the engine's, not the policy's).
  const TaskGraph graph = layered_instance(2000, 33);
  const SoaGraph soa = build_soa_graph(graph);
  const auto run_chunked = [&](const ParallelOptions& par) {
    const auto sched = make_scheduler("list-fifo", graph);
    SessionEngine engine(*sched, kProcs,
                         SimOptions{ScheduleMode::Counting}.with_parallel(par));
    StreamingGraphBuilder builder;
    std::vector<TaskId> preds;
    for (TaskId id = 0; id < soa.size(); ++id) {
      const auto row = soa.predecessors(id);
      preds.assign(row.begin(), row.end());
      (void)builder.add_task(soa.work[id], soa.procs[id], preds);
      if (builder.pending() == 128 || id + 1 == soa.size()) {
        (void)engine.submit(builder.freeze_chunk(), /*now=*/0.0);
      }
    }
    engine.drain();
    return engine.finish();
  };
  const SimResult serial = run_chunked({});
  ValidationOptions counted;
  counted.check_processor_sets = false;
  EXPECT_EQ(validate_schedule(graph, serial.schedule, kProcs, counted),
            std::nullopt);
  for (const int threads : {2, 8}) {
    const SimResult par =
        run_chunked(ParallelOptions{}.with_threads(threads).with_chunk(64));
    EXPECT_EQ(serial.makespan, par.makespan) << threads << " threads";
    expect_same_schedule(serial.schedule, par.schedule);
  }
}

TEST(ParallelIngest, FuzzFingerprintInvariantUnderParallelOracle) {
  // The parallel-ingest oracle must never perturb the fuzzer's report:
  // same instances, same fingerprint, zero findings at any thread count.
  FuzzOptions base;
  base.seed = 5;
  base.iterations = 4;
  base.generator.huge = true;
  base.generator.max_tasks = 1200;
  base.generator.max_procs = kProcs;
  base.mutations = 0;
  base.shrink = false;
  base.oracles.scale_gate_tasks = 400;
  const FuzzReport serial = run_fuzzer(base);
  EXPECT_TRUE(serial.clean());
  for (const int threads : {2, 8}) {
    FuzzOptions options = base;
    options.oracles.parallel =
        ParallelOptions{}.with_threads(threads).with_chunk(256);
    const FuzzReport par = run_fuzzer(options);
    EXPECT_TRUE(par.clean()) << threads << " threads";
    EXPECT_EQ(serial.instance_fingerprint, par.instance_fingerprint);
    EXPECT_EQ(serial.iterations_run, par.iterations_run);
  }
}

}  // namespace
}  // namespace catbatch
