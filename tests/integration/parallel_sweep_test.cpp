// Determinism contract of the parallel experiment engine: aggregates are
// bit-identical for every job count (ISSUE 2 acceptance bar), and the
// JSON report serializes them faithfully.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "analysis/experiment.hpp"
#include "analysis/json_report.hpp"
#include "analysis/metrics.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

/// Deterministic fields only (wall clocks legitimately differ).
void expect_identical(const RatioAggregate& a, const RatioAggregate& b) {
  EXPECT_EQ(a.scheduler, b.scheduler);
  EXPECT_EQ(a.runs, b.runs);
  // Bit-identical, not approximately equal: the parallel path must do the
  // same arithmetic in the same order as the serial one.
  EXPECT_EQ(a.max_ratio, b.max_ratio);
  EXPECT_EQ(a.mean_ratio, b.mean_ratio);
  EXPECT_EQ(a.max_theorem1_margin, b.max_theorem1_margin);
  EXPECT_EQ(a.max_theorem2_margin, b.max_theorem2_margin);
}

TEST(ParallelSweep, JobCountDoesNotChangeAggregates) {
  const auto families = standard_families(48, 8);
  const auto lineup = standard_scheduler_lineup();
  const InstanceFamily& family = families.front();

  SweepOptions serial;
  serial.procs = 8;
  serial.trials = 6;
  serial.base_seed = 4242;
  serial.jobs = 1;
  const auto reference = sweep_family(family, lineup, serial);

  for (const int jobs : {2, 8}) {
    SweepOptions parallel = serial;
    parallel.jobs = jobs;
    const auto got = sweep_family(family, lineup, parallel);
    ASSERT_EQ(got.size(), reference.size()) << jobs << " jobs";
    for (std::size_t s = 0; s < got.size(); ++s) {
      expect_identical(got[s], reference[s]);
    }
  }
}

TEST(ParallelSweep, MatchesHandRolledSerialReference) {
  // Replicates the historical serial sweep loop verbatim and checks the
  // engine (at 8 jobs) against it — guards both the per-run RNG streams
  // (Rng(base_seed + trial), never shared) and the reduction order.
  const auto lineup = standard_scheduler_lineup();
  const InstanceFamily family = standard_families(40, 8)[2];
  const int procs = 8;
  const std::size_t trials = 4;
  const std::uint64_t base_seed = 99;

  std::vector<RatioAggregate> expected;
  for (const NamedScheduler& named : lineup) {
    expected.push_back(RatioAggregate{named.label, 0, 0.0, 0.0, 0.0, 0.0,
                                      0.0});
  }
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng(base_seed + trial);
    const TaskGraph graph = family.make(rng);
    for (std::size_t s = 0; s < lineup.size(); ++s) {
      const auto scheduler = lineup[s].make();
      const RunMetrics m = evaluate(graph, *scheduler, procs);
      RatioAggregate& agg = expected[s];
      ++agg.runs;
      agg.max_ratio = std::max(agg.max_ratio, m.ratio);
      agg.mean_ratio +=
          (m.ratio - agg.mean_ratio) / static_cast<double>(agg.runs);
      if (m.theorem1_bound > 0.0) {
        agg.max_theorem1_margin =
            std::max(agg.max_theorem1_margin, m.ratio / m.theorem1_bound);
      }
      if (m.theorem2_bound > 0.0) {
        agg.max_theorem2_margin =
            std::max(agg.max_theorem2_margin, m.ratio / m.theorem2_bound);
      }
    }
  }

  SweepOptions options;
  options.procs = procs;
  options.trials = trials;
  options.base_seed = base_seed;
  options.jobs = 8;
  const auto got = sweep_family(family, lineup, options);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t s = 0; s < got.size(); ++s) {
    expect_identical(got[s], expected[s]);
  }
}

TEST(ParallelSweep, GridCoversEveryFamilyAndKeepsRuns) {
  const auto families = standard_families(24, 4);
  const auto lineup = standard_scheduler_lineup();
  SweepOptions options;
  options.procs = 4;
  options.trials = 2;
  options.base_seed = 7;
  options.jobs = 4;
  options.keep_runs = true;
  const auto grid = sweep_grid(families, lineup, options);
  ASSERT_EQ(grid.size(), families.size());
  for (std::size_t f = 0; f < grid.size(); ++f) {
    EXPECT_EQ(grid[f].family, families[f].label);
    ASSERT_EQ(grid[f].aggregates.size(), lineup.size());
    ASSERT_EQ(grid[f].runs.size(), options.trials * lineup.size());
    // Run records are trial-major, scheduler-minor with per-trial seeds.
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      for (std::size_t s = 0; s < lineup.size(); ++s) {
        const RunRecord& run = grid[f].runs[trial * lineup.size() + s];
        EXPECT_EQ(run.scheduler, lineup[s].label);
        EXPECT_EQ(run.seed, options.base_seed + trial);
        EXPECT_GE(run.metrics.ratio, 1.0 - 1e-9);
        EXPECT_GE(run.wall_ms, 0.0);
      }
    }
    for (const RatioAggregate& agg : grid[f].aggregates) {
      EXPECT_EQ(agg.runs, options.trials);
      EXPECT_GE(agg.max_ratio, agg.mean_ratio - 1e-12);
    }
  }
}

TEST(ParallelSweep, SingleTrialSingleSchedulerWorks) {
  const auto families = standard_families(16, 4);
  std::vector<NamedScheduler> lineup = {standard_scheduler_lineup().front()};
  SweepOptions options;
  options.procs = 4;
  options.trials = 1;
  options.base_seed = 3;
  options.jobs = 8;  // more workers than runs
  const auto aggregates = sweep_family(families.front(), lineup, options);
  ASSERT_EQ(aggregates.size(), 1u);
  EXPECT_EQ(aggregates.front().runs, 1u);
}

TEST(JsonReport, SerializesSweepResults) {
  const auto families = standard_families(16, 4);
  const auto lineup = standard_scheduler_lineup();
  SweepOptions options;
  options.procs = 4;
  options.trials = 2;
  options.base_seed = 5;
  options.jobs = 2;
  options.keep_runs = true;
  const auto grid = sweep_grid(
      std::span<const InstanceFamily>(families.data(), 2), lineup, options);
  const std::string json =
      sweep_report_json("unit_test", options, grid, 12.5);

  EXPECT_NE(json.find("\"bench\":\"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"schema\":1"), std::string::npos);
  EXPECT_NE(json.find("\"jobs\":2"), std::string::npos);
  EXPECT_NE(json.find("\"family\":\"layered\""), std::string::npos);
  EXPECT_NE(json.find("\"scheduler\":\"catbatch\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\":["), std::string::npos);
  // Balanced brackets (cheap well-formedness check; strings contain no
  // braces in this report).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(JsonReport, QuotesAndEscapes) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote("a\nb"), "\"a\\nb\"");

  JsonWriter w;
  w.begin_object();
  w.key("x").value(1.5);
  w.key("nan").value(std::nan(""));
  w.key("inf").value(std::numeric_limits<double>::infinity());
  w.key("ninf").value(-std::numeric_limits<double>::infinity());
  w.key("list").begin_array().value(1).value(true).end_array();
  w.end_object();
  // Non-finite doubles must surface as tagged sentinels, never as null:
  // null parses back as "no value" and silently corrupts aggregates.
  EXPECT_EQ(w.str(),
            "{\"x\":1.5,\"nan\":\"NaN\",\"inf\":\"Infinity\","
            "\"ninf\":\"-Infinity\",\"list\":[1,true]}");
}

TEST(JsonReport, BenchReportNeverContainsNull) {
  // Round-trip guard for BENCH_*.json consumers: where a number is
  // required, a null token must be a hard error. The writer therefore may
  // not emit `null` at all — a non-finite metric becomes a tagged string
  // sentinel that a strict numeric parse rejects loudly.
  const auto families = standard_families(16, 4);
  const auto lineup = standard_scheduler_lineup();
  SweepOptions options;
  options.procs = 4;
  options.trials = 2;
  options.base_seed = 5;
  options.jobs = 2;
  options.keep_runs = true;
  const auto grid = sweep_grid(
      std::span<const InstanceFamily>(families.data(), 2), lineup, options);

  // A healthy report has no non-finite values in the first place...
  const std::string json = sweep_report_json("unit_test", options, grid, 1.0);
  EXPECT_EQ(json.find("null"), std::string::npos);

  // ...and even a poisoned wall-clock renders as a sentinel, not null.
  const std::string poisoned = sweep_report_json(
      "unit_test", options, grid, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(poisoned.find("null"), std::string::npos);
  EXPECT_NE(poisoned.find("\"NaN\""), std::string::npos);
}

TEST(StandardFamily, LooksUpByLabelAndThrowsOnUnknown) {
  const InstanceFamily family = standard_family("chains", 30, 4);
  EXPECT_EQ(family.label, "chains");
  Rng rng(1);
  const TaskGraph g = family.make(rng);
  EXPECT_GE(g.size(), 10u);
  EXPECT_THROW((void)standard_family("nope", 30, 4), ContractViolation);
}

}  // namespace
}  // namespace catbatch
