// Stress and fuzz coverage: a randomized (but protocol-abiding) scheduler
// drives the engine through unusual decision sequences, large instances
// exercise scaling paths, and determinism is checked end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "instances/adversary.hpp"
#include "instances/random_dags.hpp"
#include "instances/workloads.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/rng.hpp"

namespace catbatch {
namespace {

/// Starts a random feasible subset of the ready tasks at each decision
/// point (possibly none while something runs). Not work-conserving and not
/// clever — exactly what a fuzzer wants.
class ChaoticScheduler final : public OnlineScheduler {
 public:
  explicit ChaoticScheduler(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "chaotic"; }
  void reset() override {
    rng_.reseed(seed_);
    ready_.clear();
  }
  void task_ready(const ReadyTask& task, Time) override {
    ready_.push_back({task.id, task.procs});
  }
  void select(Time, int available, std::vector<TaskId>& picks) override {
    std::size_t keep = 0;
    for (std::size_t k = 0; k < ready_.size(); ++k) {
      Entry& e = ready_[k];
      const bool fits = e.procs <= available;
      if (fits && rng_.bernoulli(0.5)) {
        available -= e.procs;
        picks.push_back(e.id);
      } else {
        ready_[keep++] = e;
      }
    }
    ready_.resize(keep);
    // Deadlock safety: if nothing was picked, force-start the first
    // fitting task (a no-op when nothing fits, in which case something is
    // necessarily still running).
    if (picks.empty()) {
      for (std::size_t k = 0; k < ready_.size(); ++k) {
        if (ready_[k].procs <= available) {
          picks.push_back(ready_[k].id);
          ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(k));
          break;
        }
      }
    }
  }

 private:
  struct Entry {
    TaskId id;
    int procs;
  };
  std::uint64_t seed_;
  Rng rng_{0};
  std::vector<Entry> ready_;
};

TEST(Stress, ChaoticSchedulerAlwaysProducesValidSchedules) {
  Rng rng(1);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const TaskGraph g = random_layered_dag(rng, 150, 12, RandomTaskParams{});
    ChaoticScheduler sched(seed);
    const SimResult r = simulate(g, sched, 8);
    require_valid_schedule(g, r.schedule, 8);
    EXPECT_GE(r.makespan, makespan_lower_bound(g, 8) - 1e-9);
  }
}

TEST(Stress, ChaoticSchedulerOnAdversary) {
  ChaoticScheduler sched(99);
  ZAdversarySource source(3, 2, 0x1.0p-8);
  const SimResult r = simulate(source, sched, 3);
  require_valid_schedule(source.realized_graph(), r.schedule, 3);
  EXPECT_GE(r.makespan, z_online_lower_bound(3, 2) - 1e-9);
}

TEST(Stress, LargeInstanceScaling) {
  Rng rng(2);
  RandomTaskParams params;
  params.procs.max_procs = 32;
  const TaskGraph g = random_layered_dag(rng, 20000, 100, params);
  CatBatchScheduler sched;
  const SimResult r = simulate(g, sched, 32);
  require_valid_schedule(g, r.schedule, 32);
  EXPECT_EQ(r.stats.task_count, 20000u);
}

TEST(Stress, DeepChainScaling) {
  TaskGraph g;
  TaskId prev = g.add_task(1.0, 1);
  for (int k = 1; k < 5000; ++k) {
    const TaskId id = g.add_task(1.0, 1);
    g.add_edge(prev, id);
    prev = id;
  }
  CatBatchScheduler sched;
  const SimResult r = simulate(g, sched, 4);
  EXPECT_DOUBLE_EQ(r.makespan, 5000.0);  // no idle between singleton batches
}

TEST(Stress, SingleProcessorPlatform) {
  Rng rng(3);
  RandomTaskParams params;
  params.procs.max_procs = 1;
  const TaskGraph g = random_layered_dag(rng, 200, 10, params);
  for (const bool use_catbatch : {true, false}) {
    CatBatchScheduler cat;
    ListScheduler list;
    OnlineScheduler& sched = use_catbatch
                                 ? static_cast<OnlineScheduler&>(cat)
                                 : static_cast<OnlineScheduler&>(list);
    const SimResult r = simulate(g, sched, 1);
    require_valid_schedule(g, r.schedule, 1);
    // P=1 is fully serialized: makespan equals the total work exactly.
    EXPECT_DOUBLE_EQ(r.makespan, g.total_area());
  }
}

TEST(Stress, SimulationIsDeterministic) {
  Rng rng(4);
  const TaskGraph g = random_order_dag(rng, 200, 0.03, RandomTaskParams{});
  CatBatchScheduler a, b;
  const SimResult ra = simulate(g, a, 8);
  const SimResult rb = simulate(g, b, 8);
  ASSERT_EQ(ra.schedule.size(), rb.schedule.size());
  for (TaskId id = 0; id < g.size(); ++id) {
    EXPECT_DOUBLE_EQ(ra.schedule.entry_for(id).start,
                     rb.schedule.entry_for(id).start);
    EXPECT_EQ(ra.schedule.entry_for(id).processors,
              rb.schedule.entry_for(id).processors);
  }
}

TEST(Stress, WideWorkloadSweepStaysWithinTheorem1) {
  // A final broad net over every workload generator and several platform
  // sizes.
  for (const int P : {4, 8, 16, 32}) {
    for (const TaskGraph& g :
         {cholesky_dag(8), lu_dag(6), stencil_dag(12, 12), fft_dag(5),
          map_reduce_dag(32, 8, 1.0, 2.0, 1, 2)}) {
      if (g.max_procs_required() > P) continue;
      CatBatchScheduler sched;
      const SimResult r = simulate(g, sched, P);
      const Time lb = makespan_lower_bound(g, P);
      EXPECT_LE(r.makespan / lb,
                std::log2(static_cast<double>(g.size())) + 3.0 + 1e-9)
          << "P=" << P;
    }
  }
}

}  // namespace
}  // namespace catbatch
