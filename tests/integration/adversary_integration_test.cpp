// Lower-bound constructions end-to-end (Section 6): the online/offline gap
// on Z^Alg_P(K) grows with P for every scheduler in the lineup, matching the
// Theorem 3/4 shape, while CatBatch stays within its Theorem 1 guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "core/bounds.hpp"
#include "core/lmatrix.hpp"
#include "instances/adversary.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/relaxed_catbatch.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"

namespace catbatch {
namespace {

constexpr Time kEps = 0x1.0p-8;

double online_offline_gap(OnlineScheduler& sched, int P, int K) {
  ZAdversarySource source(P, K, kEps);
  const SimResult online = simulate(source, sched, P);
  require_valid_schedule(source.realized_graph(), online.schedule, P);
  const Schedule offline = z_offline_schedule(source);
  require_valid_schedule(source.realized_graph(), offline, P);
  return static_cast<double>(online.makespan) /
         static_cast<double>(offline.makespan());
}

TEST(AdversaryIntegration, GapGrowsWithPForListScheduling) {
  ListScheduler sched;
  double prev = 0.0;
  for (const int P : {2, 3, 4, 5}) {
    const double gap = online_offline_gap(sched, P, 2);
    EXPECT_GT(gap, prev * 0.95) << "P=" << P;  // essentially monotone
    prev = gap;
  }
  EXPECT_GT(prev, 1.5);
}

TEST(AdversaryIntegration, GapGrowsWithPForCatBatch) {
  // Even CatBatch cannot escape Θ(log n) here — but it must stay within
  // its own guarantee against Lb of the realized instance.
  for (const int P : {2, 3, 4, 5}) {
    CatBatchScheduler sched;
    ZAdversarySource source(P, 2, kEps);
    const SimResult r = simulate(source, sched, P);
    const TaskGraph& g = source.realized_graph();
    const Time lb = makespan_lower_bound(g, P);
    EXPECT_LE(static_cast<double>(r.makespan / lb),
              theorem1_bound(g.size()) + 1e-9)
        << "P=" << P;
  }
}

TEST(AdversaryIntegration, EveryOnlineSchedulerPaysLemma10) {
  const int P = 4, K = 2;
  CatBatchScheduler cat;
  RelaxedCatBatch relaxed;
  ListScheduler fifo;
  ListScheduler lpt(ListSchedulerOptions{ListPriority::LongestFirst, false});
  OnlineScheduler* schedulers[] = {&cat, &relaxed, &fifo, &lpt};
  for (OnlineScheduler* sched : schedulers) {
    ZAdversarySource source(P, K, kEps);
    const SimResult r = simulate(source, *sched, P);
    EXPECT_GE(r.makespan, z_online_lower_bound(P, K) - 1e-6)
        << sched->name();
  }
}

TEST(AdversaryIntegration, GapTracksTheorem3Curve) {
  // Theorem 3 machinery: gap > (P+1) / (4 + 8Pε) for K = 2; verify the
  // measured gap clears that analytic floor.
  ListScheduler sched;
  for (const int P : {3, 4, 5, 6}) {
    const double gap = online_offline_gap(sched, P, 2);
    const double floor =
        (P + 1.0) / (2.0 * (2.0 + 4.0 * P * static_cast<double>(kEps)));
    EXPECT_GT(gap, floor * 0.9) << "P=" << P;
  }
}

TEST(AdversaryIntegration, RealizedInstanceMatchesTaskCountFormula) {
  for (const int P : {2, 4}) {
    ZAdversarySource source(P, 3, kEps);
    ListScheduler sched;
    (void)simulate(source, sched, P);
    EXPECT_EQ(static_cast<std::int64_t>(source.realized_graph().size()),
              z_task_count(P, 3));
  }
}

TEST(AdversaryIntegration, XAloneForcesSerializationOfAnyWorkConserving) {
  // Lemma 8's phenomenon on a single X: makespan of list scheduling is
  // near P*K^{P-1} while Lb is near K^{P-1}.
  const int P = 5, K = 2;
  const XInstance x = make_x_instance(P, K, kEps);
  ListScheduler sched;
  const SimResult r = simulate(x.graph, sched, P);
  require_valid_schedule(x.graph, r.schedule, P);
  EXPECT_GT(r.makespan, x_optimal_lower_bound(P, K) - 1e-9);
}

TEST(AdversaryIntegration, OfflineZMakespanBelowAnalyticBound) {
  for (const int K : {2, 3}) {
    const int P = 4;
    ZAdversarySource source(P, K, kEps);
    CatBatchScheduler sched;
    (void)simulate(source, sched, P);
    const Schedule offline = z_offline_schedule(source);
    EXPECT_LT(offline.makespan(), z_offline_upper_bound(P, K, kEps));
  }
}

}  // namespace
}  // namespace catbatch
