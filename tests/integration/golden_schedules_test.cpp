// Golden-schedule invariance: every registry scheduler must produce
// bit-identical makespans on a fixed corpus (standard_families(120, 8),
// seeds 7 and 8, P = 8) across engine refactors. The expected values were
// recorded with the pre-rewrite engine; hex float literals make the
// comparison exact. Counting mode is asserted against the same goldens —
// it must not perturb a single decision.
//
// If a change legitimately alters schedules (a new tie-break rule, a
// scheduler behavior fix), regenerate the table by running the corpus and
// printing makespans with printf("%a") — but treat any unexpected diff as
// a regression, not noise.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "analysis/experiment.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"

namespace catbatch {
namespace {

struct GoldenRow {
  const char* family;
  std::uint64_t seed;
  const char* scheduler;
  double makespan;
};

constexpr GoldenRow kGolden[] = {
    {"layered", 7, "catbatch", 0x1.5e8e904p+6},
    {"layered", 7, "relaxed-catbatch", 0x1.917fe2cp+6},
    {"layered", 7, "list-fifo", 0x1.2a6e0f4p+6},
    {"layered", 7, "list-longest-first", 0x1.b696828p+6},
    {"layered", 7, "list-shortest-first", 0x1.8e135d4p+6},
    {"layered", 7, "list-widest-first", 0x1.2f4ab48p+6},
    {"layered", 7, "list-narrowest-first", 0x1.cfa8fb4p+6},
    {"layered", 7, "list-smallest-criticality", 0x1.86c8efp+6},
    {"layered", 7, "easy-backfill", 0x1.57c3638p+6},
    {"layered", 7, "rank", 0x1.56fdc4p+6},
    {"layered", 7, "offline-catbatch", 0x1.5e8e904p+6},
    {"layered", 7, "divide-conquer", 0x1.8d81e4cp+6},
    {"layered", 7, "contiguous-catbatch", 0x1.90ecb08p+6},
    {"layered", 8, "catbatch", 0x1.2003c42p+7},
    {"layered", 8, "relaxed-catbatch", 0x1.d4640fp+6},
    {"layered", 8, "list-fifo", 0x1.ab5037p+6},
    {"layered", 8, "list-longest-first", 0x1.e59ec9cp+6},
    {"layered", 8, "list-shortest-first", 0x1.e54411p+6},
    {"layered", 8, "list-widest-first", 0x1.ae0b59p+6},
    {"layered", 8, "list-narrowest-first", 0x1.fedf92cp+6},
    {"layered", 8, "list-smallest-criticality", 0x1.c7979e8p+6},
    {"layered", 8, "easy-backfill", 0x1.acd92ep+6},
    {"layered", 8, "rank", 0x1.da7c208p+6},
    {"layered", 8, "offline-catbatch", 0x1.2003c42p+7},
    {"layered", 8, "divide-conquer", 0x1.1754326p+7},
    {"layered", 8, "contiguous-catbatch", 0x1.412a306p+7},
    {"order-dag", 7, "catbatch", 0x1.76a0b44p+6},
    {"order-dag", 7, "relaxed-catbatch", 0x1.4449084p+6},
    {"order-dag", 7, "list-fifo", 0x1.43c9b8p+6},
    {"order-dag", 7, "list-longest-first", 0x1.849947p+6},
    {"order-dag", 7, "list-shortest-first", 0x1.54d1934p+6},
    {"order-dag", 7, "list-widest-first", 0x1.191f3b8p+6},
    {"order-dag", 7, "list-narrowest-first", 0x1.83c6cccp+6},
    {"order-dag", 7, "list-smallest-criticality", 0x1.461ab68p+6},
    {"order-dag", 7, "easy-backfill", 0x1.1edc794p+6},
    {"order-dag", 7, "rank", 0x1.7bdbfap+6},
    {"order-dag", 7, "offline-catbatch", 0x1.76a0b44p+6},
    {"order-dag", 7, "divide-conquer", 0x1.815135cp+6},
    {"order-dag", 7, "contiguous-catbatch", 0x1.b3f3c88p+6},
    {"order-dag", 8, "catbatch", 0x1.dbf16fcp+6},
    {"order-dag", 8, "relaxed-catbatch", 0x1.daac6c8p+6},
    {"order-dag", 8, "list-fifo", 0x1.aaf5e1cp+6},
    {"order-dag", 8, "list-longest-first", 0x1.ebdd2d8p+6},
    {"order-dag", 8, "list-shortest-first", 0x1.e51ebb8p+6},
    {"order-dag", 8, "list-widest-first", 0x1.88e83b4p+6},
    {"order-dag", 8, "list-narrowest-first", 0x1.1f3b6dep+7},
    {"order-dag", 8, "list-smallest-criticality", 0x1.a7a865p+6},
    {"order-dag", 8, "easy-backfill", 0x1.9d01548p+6},
    {"order-dag", 8, "rank", 0x1.c2e927p+6},
    {"order-dag", 8, "offline-catbatch", 0x1.dbf16fcp+6},
    {"order-dag", 8, "divide-conquer", 0x1.b84952cp+6},
    {"order-dag", 8, "contiguous-catbatch", 0x1.2973e72p+7},
    {"series-parallel", 7, "catbatch", 0x1.11cba8ep+7},
    {"series-parallel", 7, "relaxed-catbatch", 0x1.d98df14p+6},
    {"series-parallel", 7, "list-fifo", 0x1.d30adb8p+6},
    {"series-parallel", 7, "list-longest-first", 0x1.21372a4p+7},
    {"series-parallel", 7, "list-shortest-first", 0x1.db2773cp+6},
    {"series-parallel", 7, "list-widest-first", 0x1.d0655dp+6},
    {"series-parallel", 7, "list-narrowest-first", 0x1.5a07cd4p+7},
    {"series-parallel", 7, "list-smallest-criticality", 0x1.d7497c4p+6},
    {"series-parallel", 7, "easy-backfill", 0x1.81a1eb8p+6},
    {"series-parallel", 7, "rank", 0x1.cc0a82cp+6},
    {"series-parallel", 7, "offline-catbatch", 0x1.11cba8ep+7},
    {"series-parallel", 7, "divide-conquer", 0x1.007c3dp+7},
    {"series-parallel", 7, "contiguous-catbatch", 0x1.14732bcp+7},
    {"series-parallel", 8, "catbatch", 0x1.0eedd6ap+7},
    {"series-parallel", 8, "relaxed-catbatch", 0x1.016025p+7},
    {"series-parallel", 8, "list-fifo", 0x1.b5213bp+6},
    {"series-parallel", 8, "list-longest-first", 0x1.20a98c8p+7},
    {"series-parallel", 8, "list-shortest-first", 0x1.3ba073ap+7},
    {"series-parallel", 8, "list-widest-first", 0x1.b8b84ccp+6},
    {"series-parallel", 8, "list-narrowest-first", 0x1.581b0fap+7},
    {"series-parallel", 8, "list-smallest-criticality", 0x1.09e8704p+7},
    {"series-parallel", 8, "easy-backfill", 0x1.ab75e88p+6},
    {"series-parallel", 8, "rank", 0x1.0db423ep+7},
    {"series-parallel", 8, "offline-catbatch", 0x1.0eedd6ap+7},
    {"series-parallel", 8, "divide-conquer", 0x1.0b87c82p+7},
    {"series-parallel", 8, "contiguous-catbatch", 0x1.34c2d3cp+7},
    {"fork-join", 7, "catbatch", 0x1.06c8004p+7},
    {"fork-join", 7, "relaxed-catbatch", 0x1.b19d034p+6},
    {"fork-join", 7, "list-fifo", 0x1.a68066p+6},
    {"fork-join", 7, "list-longest-first", 0x1.9440b58p+6},
    {"fork-join", 7, "list-shortest-first", 0x1.b77432cp+6},
    {"fork-join", 7, "list-widest-first", 0x1.a7a77bp+6},
    {"fork-join", 7, "list-narrowest-first", 0x1.ae9ab78p+6},
    {"fork-join", 7, "list-smallest-criticality", 0x1.a68066p+6},
    {"fork-join", 7, "easy-backfill", 0x1.ca0e05p+6},
    {"fork-join", 7, "rank", 0x1.9440b58p+6},
    {"fork-join", 7, "offline-catbatch", 0x1.06c8004p+7},
    {"fork-join", 7, "divide-conquer", 0x1.fac8074p+6},
    {"fork-join", 7, "contiguous-catbatch", 0x1.0a89508p+7},
    {"fork-join", 8, "catbatch", 0x1.214981ep+7},
    {"fork-join", 8, "relaxed-catbatch", 0x1.f7672ep+6},
    {"fork-join", 8, "list-fifo", 0x1.ec36748p+6},
    {"fork-join", 8, "list-longest-first", 0x1.dd17518p+6},
    {"fork-join", 8, "list-shortest-first", 0x1.0180d9cp+7},
    {"fork-join", 8, "list-widest-first", 0x1.f48d52p+6},
    {"fork-join", 8, "list-narrowest-first", 0x1.e577634p+6},
    {"fork-join", 8, "list-smallest-criticality", 0x1.ec36748p+6},
    {"fork-join", 8, "easy-backfill", 0x1.14af948p+7},
    {"fork-join", 8, "rank", 0x1.dd17518p+6},
    {"fork-join", 8, "offline-catbatch", 0x1.214981ep+7},
    {"fork-join", 8, "divide-conquer", 0x1.3149a8ap+7},
    {"fork-join", 8, "contiguous-catbatch", 0x1.38e9df6p+7},
    {"chains", 7, "catbatch", 0x1.97731e4p+6},
    {"chains", 7, "relaxed-catbatch", 0x1.847be14p+6},
    {"chains", 7, "list-fifo", 0x1.54a2cb8p+6},
    {"chains", 7, "list-longest-first", 0x1.86ba8b8p+6},
    {"chains", 7, "list-shortest-first", 0x1.ad746a8p+6},
    {"chains", 7, "list-widest-first", 0x1.46d275cp+6},
    {"chains", 7, "list-narrowest-first", 0x1.0fdb5dcp+7},
    {"chains", 7, "list-smallest-criticality", 0x1.b5bd164p+6},
    {"chains", 7, "easy-backfill", 0x1.4141e34p+6},
    {"chains", 7, "rank", 0x1.9c99a68p+6},
    {"chains", 7, "offline-catbatch", 0x1.97731e4p+6},
    {"chains", 7, "divide-conquer", 0x1.97ec35p+6},
    {"chains", 7, "contiguous-catbatch", 0x1.c23c858p+6},
    {"chains", 8, "catbatch", 0x1.1c7a364p+7},
    {"chains", 8, "relaxed-catbatch", 0x1.f29385p+6},
    {"chains", 8, "list-fifo", 0x1.de8fdp+6},
    {"chains", 8, "list-longest-first", 0x1.8380be6p+7},
    {"chains", 8, "list-shortest-first", 0x1.2c39782p+7},
    {"chains", 8, "list-widest-first", 0x1.c43045p+6},
    {"chains", 8, "list-narrowest-first", 0x1.b1a2894p+7},
    {"chains", 8, "list-smallest-criticality", 0x1.1557f2p+7},
    {"chains", 8, "easy-backfill", 0x1.e3c6e18p+6},
    {"chains", 8, "rank", 0x1.1b7c75ep+7},
    {"chains", 8, "offline-catbatch", 0x1.1c7a364p+7},
    {"chains", 8, "divide-conquer", 0x1.1058ccap+7},
    {"chains", 8, "contiguous-catbatch", 0x1.3f45bd8p+7},
    {"out-tree", 7, "catbatch", 0x1.875517cp+6},
    {"out-tree", 7, "relaxed-catbatch", 0x1.4d38c8cp+6},
    {"out-tree", 7, "list-fifo", 0x1.3fe71ecp+6},
    {"out-tree", 7, "list-longest-first", 0x1.bfb8c54p+6},
    {"out-tree", 7, "list-shortest-first", 0x1.6262798p+6},
    {"out-tree", 7, "list-widest-first", 0x1.2c4bf8p+6},
    {"out-tree", 7, "list-narrowest-first", 0x1.ba4822cp+6},
    {"out-tree", 7, "list-smallest-criticality", 0x1.758b2ap+6},
    {"out-tree", 7, "easy-backfill", 0x1.306a3e4p+6},
    {"out-tree", 7, "rank", 0x1.5c14414p+6},
    {"out-tree", 7, "offline-catbatch", 0x1.875517cp+6},
    {"out-tree", 7, "divide-conquer", 0x1.901dd0cp+6},
    {"out-tree", 7, "contiguous-catbatch", 0x1.978cfap+6},
    {"out-tree", 8, "catbatch", 0x1.c4dc13cp+6},
    {"out-tree", 8, "relaxed-catbatch", 0x1.98d8a58p+6},
    {"out-tree", 8, "list-fifo", 0x1.8efeb68p+6},
    {"out-tree", 8, "list-longest-first", 0x1.c5fe7ap+6},
    {"out-tree", 8, "list-shortest-first", 0x1.c108d08p+6},
    {"out-tree", 8, "list-widest-first", 0x1.6f265f4p+6},
    {"out-tree", 8, "list-narrowest-first", 0x1.05eed9ep+7},
    {"out-tree", 8, "list-smallest-criticality", 0x1.9912008p+6},
    {"out-tree", 8, "easy-backfill", 0x1.a1e3648p+6},
    {"out-tree", 8, "rank", 0x1.b0a083cp+6},
    {"out-tree", 8, "offline-catbatch", 0x1.c4dc13cp+6},
    {"out-tree", 8, "divide-conquer", 0x1.c667114p+6},
    {"out-tree", 8, "contiguous-catbatch", 0x1.0b253bp+7},
    {"independent", 7, "catbatch", 0x1.085568p+6},
    {"independent", 7, "relaxed-catbatch", 0x1.f96a8d8p+5},
    {"independent", 7, "list-fifo", 0x1.f813948p+5},
    {"independent", 7, "list-longest-first", 0x1.edba658p+5},
    {"independent", 7, "list-shortest-first", 0x1.01f005p+6},
    {"independent", 7, "list-widest-first", 0x1.0a9588cp+6},
    {"independent", 7, "list-narrowest-first", 0x1.f8f12bp+5},
    {"independent", 7, "list-smallest-criticality", 0x1.f813948p+5},
    {"independent", 7, "easy-backfill", 0x1.26862a8p+6},
    {"independent", 7, "rank", 0x1.edba658p+5},
    {"independent", 7, "offline-catbatch", 0x1.085568p+6},
    {"independent", 7, "divide-conquer", 0x1.086b9c8p+6},
    {"independent", 7, "contiguous-catbatch", 0x1.35865a4p+6},
    {"independent", 7, "shelf-nfdh", 0x1.27e5f3cp+6},
    {"independent", 7, "shelf-ffdh", 0x1.07e605cp+6},
    {"independent", 8, "catbatch", 0x1.7a39decp+6},
    {"independent", 8, "relaxed-catbatch", 0x1.67fadacp+6},
    {"independent", 8, "list-fifo", 0x1.6ac9274p+6},
    {"independent", 8, "list-longest-first", 0x1.642fa7p+6},
    {"independent", 8, "list-shortest-first", 0x1.6e4af58p+6},
    {"independent", 8, "list-widest-first", 0x1.6f834f4p+6},
    {"independent", 8, "list-narrowest-first", 0x1.69a692p+6},
    {"independent", 8, "list-smallest-criticality", 0x1.6ac9274p+6},
    {"independent", 8, "easy-backfill", 0x1.7d9a37cp+6},
    {"independent", 8, "rank", 0x1.642fa7p+6},
    {"independent", 8, "offline-catbatch", 0x1.7a39decp+6},
    {"independent", 8, "divide-conquer", 0x1.7afae4p+6},
    {"independent", 8, "contiguous-catbatch", 0x1.c735e7cp+6},
    {"independent", 8, "shelf-nfdh", 0x1.ba06a4cp+6},
    {"independent", 8, "shelf-ffdh", 0x1.723cf54p+6},
};

TEST(GoldenSchedules, RegistryMakespansAreInvariant) {
  constexpr int kProcs = 8;
  const auto families = standard_families(120, 8);
  for (const GoldenRow& row : kGolden) {
    const auto fam = std::find_if(
        families.begin(), families.end(),
        [&](const auto& f) { return f.label == row.family; });
    ASSERT_NE(fam, families.end()) << row.family;
    Rng rng(row.seed);
    const TaskGraph g = fam->make(rng);

    auto identity_sched = make_scheduler(row.scheduler, g);
    ASSERT_NE(identity_sched, nullptr) << row.scheduler;
    const SimResult identity = simulate(g, *identity_sched, kProcs);
    EXPECT_EQ(identity.makespan, row.makespan)
        << row.family << " seed=" << row.seed << " " << row.scheduler;

    auto counting_sched = make_scheduler(row.scheduler, g);
    const SimResult counting = simulate(g, *counting_sched, kProcs,
                                        SimOptions{ScheduleMode::Counting});
    EXPECT_EQ(counting.makespan, row.makespan)
        << row.family << " seed=" << row.seed << " " << row.scheduler
        << " (counting mode)";
  }
}

}  // namespace
}  // namespace catbatch
