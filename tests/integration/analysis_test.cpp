#include "analysis/experiment.hpp"
#include "analysis/metrics.hpp"
#include "analysis/report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "instances/examples.hpp"
#include "sched/catbatch_scheduler.hpp"

namespace catbatch {
namespace {

TEST(Metrics, EvaluateOnPaperExample) {
  const TaskGraph g = make_paper_example();
  CatBatchScheduler sched;
  const RunMetrics m = evaluate(g, sched, 4);
  EXPECT_EQ(m.scheduler, "catbatch(arrival)");
  EXPECT_EQ(m.task_count, 11u);
  EXPECT_NEAR(m.makespan, 15.2, 1e-9);
  EXPECT_NEAR(m.lower_bound, 9.375, 1e-9);  // area bound: 37.5 / 4
  EXPECT_NEAR(m.ratio, 15.2 / 9.375, 1e-6);
  EXPECT_GT(m.utilization, 0.0);
  EXPECT_LT(m.utilization, 1.0);
  EXPECT_NEAR(m.theorem1_bound, std::log2(11.0) + 3.0, 1e-12);
  EXPECT_NEAR(m.theorem2_bound, std::log2(6.0 / 0.6) + 6.0, 1e-9);
}

TEST(Metrics, StandardLineupContainsCoreAlgorithms) {
  const auto lineup = standard_scheduler_lineup();
  ASSERT_GE(lineup.size(), 5u);
  EXPECT_EQ(lineup[0].label, "catbatch");
  EXPECT_EQ(lineup[1].label, "relaxed-catbatch");
  // Factories make fresh independent instances.
  const auto a = lineup[0].make();
  const auto b = lineup[0].make();
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->name(), "catbatch(arrival)");
}

TEST(Experiment, SweepAggregatesRatios) {
  const auto families = standard_families(40, 8);
  ASSERT_GE(families.size(), 5u);
  const auto lineup = standard_scheduler_lineup();
  const auto aggregates = sweep_family(families[0], lineup, 8, 3, 1000);
  ASSERT_EQ(aggregates.size(), lineup.size());
  for (const RatioAggregate& agg : aggregates) {
    EXPECT_EQ(agg.runs, 3u);
    EXPECT_GE(agg.max_ratio, agg.mean_ratio - 1e-12);
    EXPECT_GE(agg.mean_ratio, 1.0 - 1e-9);  // makespan >= Lb always
  }
  // CatBatch must respect its Theorem 1 margin in every family trial.
  EXPECT_LE(aggregates[0].max_theorem1_margin, 1.0 + 1e-9);
}

TEST(Experiment, EveryStandardFamilyProducesRequestedSize) {
  for (const InstanceFamily& family : standard_families(60, 8)) {
    Rng rng(5);
    const TaskGraph g = family.make(rng);
    EXPECT_GE(g.size(), 20u) << family.label;
    g.validate(8);
  }
}

TEST(Report, HeaderAndMetricsTableRender) {
  std::ostringstream os;
  print_experiment_header(os, "E5", "Figure 6 trace");
  EXPECT_NE(os.str().find("=== E5: Figure 6 trace ==="), std::string::npos);

  const TaskGraph g = make_paper_example();
  CatBatchScheduler sched;
  const RunMetrics m = evaluate(g, sched, 4);
  TextTable table = make_metrics_table();
  add_metrics_row(table, m);
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("catbatch(arrival)"), std::string::npos);
  EXPECT_NE(rendered.find("15.2"), std::string::npos);
}

}  // namespace
}  // namespace catbatch
