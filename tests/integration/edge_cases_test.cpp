// Boundary conditions across modules that the per-module suites don't
// reach: extreme scales, degenerate platforms, all-wide instances, and
// cross-module corner interactions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "core/lmatrix.hpp"
#include "instances/adversary.hpp"
#include "instances/examples.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/divide_conquer.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/svg.hpp"
#include "sim/validate.hpp"

namespace catbatch {
namespace {

TEST(EdgeCases, AllFullWidthTasksSerialize) {
  // Every task needs all P processors: any scheduler produces a chain.
  TaskGraph g;
  for (int k = 0; k < 6; ++k) g.add_task(1.0, 4);
  for (OnlineScheduler* sched :
       {static_cast<OnlineScheduler*>(new CatBatchScheduler()),
        static_cast<OnlineScheduler*>(new ListScheduler())}) {
    const SimResult r = simulate(g, *sched, 4);
    require_valid_schedule(g, r.schedule, 4);
    EXPECT_DOUBLE_EQ(r.makespan, 6.0);
    delete sched;
  }
}

TEST(EdgeCases, IntroInstanceOnOneProcessorDegenerates) {
  // P = 1: B tasks need 1 proc; everything serializes; ASAP == optimal.
  const IntroInstance intro = make_intro_instance(1);
  CatBatchScheduler cat;
  ListScheduler fifo;
  const Time t_cat = simulate(intro.graph, cat, 1).makespan;
  const Time t_fifo = simulate(intro.graph, fifo, 1).makespan;
  EXPECT_DOUBLE_EQ(t_cat, intro.graph.total_area());
  EXPECT_DOUBLE_EQ(t_fifo, intro.graph.total_area());
}

TEST(EdgeCases, ExtremeTimeScalesStayExact) {
  // Work values spanning ~2^50 in one instance: categories and schedules
  // must still be exact.
  TaskGraph g;
  const TaskId tiny = g.add_task(0x1.0p-20, 1, "tiny");
  const TaskId huge = g.add_task(0x1.0p30, 1, "huge");
  g.add_edge(tiny, huge);
  CatBatchScheduler sched;
  const SimResult r = simulate(g, sched, 2);
  require_valid_schedule(g, r.schedule, 2);
  EXPECT_DOUBLE_EQ(r.makespan, 0x1.0p-20 + 0x1.0p30);
  EXPECT_EQ(sched.batch_history().size(), 2u);
}

TEST(EdgeCases, TheoremBoundsAtExtremeSpread) {
  TaskGraph g;
  g.add_task(0x1.0p-20, 1);
  g.add_task(0x1.0p30, 1);
  const InstanceBounds b = compute_bounds(g, 2);
  EXPECT_NEAR(theorem2_bound(b.max_work, b.min_work), 50.0 + 6.0, 1e-9);
}

TEST(EdgeCases, LMatrixAtPowerOfTwoCriticalPath) {
  // C exactly a power of two sits on the X-bracket boundary.
  const LMatrix L(8.0);
  EXPECT_EQ(L.X(), 2);  // 4 < 8 <= 8
  EXPECT_DOUBLE_EQ(L.at(1, 1), 8.0);
  EXPECT_DOUBLE_EQ(L.at(2, 1), 4.0);
  EXPECT_DOUBLE_EQ(L.at(2, 2), 4.0);  // 2*4 <= 8: full length
  EXPECT_DOUBLE_EQ(L.at(2, 3), 0.0);
  EXPECT_DOUBLE_EQ(L.row_sum(2), 8.0);
}

TEST(EdgeCases, YInstanceAtMaximalType) {
  // i = P-1: one blue/red pair per chain; optimal is one parallel round.
  const YInstance y = make_y_instance(4, 3, 2, 0.0625);
  EXPECT_EQ(y.graph.size(), 8u);
  const Schedule opt = y_optimal_schedule(y);
  require_valid_schedule(y.graph, opt, 4);
  EXPECT_DOUBLE_EQ(opt.makespan(), 8.0 + 4 * 0.0625);
}

TEST(EdgeCases, DivideConquerOnSingleCategoryInstance) {
  // All tasks share one criticality interval: the first midpoint splits
  // none and the whole instance is one straddling batch.
  TaskGraph g;
  for (int k = 0; k < 10; ++k) g.add_task(1.0, 2);
  const DivideConquerResult r = divide_conquer_schedule(g, 4);
  require_valid_schedule(g, r.schedule, 4);
  EXPECT_EQ(r.batch_count, 1u);
  EXPECT_DOUBLE_EQ(r.schedule.makespan(), 5.0);
}

TEST(EdgeCases, SvgSingleProcessorRenders) {
  TaskGraph g;
  g.add_task(1.0, 1, "x");
  ListScheduler sched;
  const SimResult r = simulate(g, sched, 1);
  const std::string svg = svg_gantt(g, r.schedule, 1);
  EXPECT_NE(svg.find("P0"), std::string::npos);
}

TEST(EdgeCases, CatBatchManySingletonBatches) {
  // A chain of distinct-length tasks: every task is its own batch, and
  // batches chain with zero idle (Lemma 7 with A/P summing to the chain).
  TaskGraph g;
  TaskId prev = kInvalidTask;
  Time total = 0.0;
  for (int k = 1; k <= 20; ++k) {
    const Time work = static_cast<Time>(k) * 0.25;
    const TaskId id = g.add_task(work, 1);
    if (prev != kInvalidTask) g.add_edge(prev, id);
    prev = id;
    total += work;
  }
  CatBatchScheduler sched;
  const SimResult r = simulate(g, sched, 8);
  EXPECT_DOUBLE_EQ(r.makespan, total);
  EXPECT_EQ(sched.batch_history().size(), 20u);
}

TEST(EdgeCases, ZAdversaryMinimalPlatform) {
  // P = 1: X_1(K) is a single blue/red pair; Z has one layer.
  ZAdversarySource source(1, 2, 0.125);
  ListScheduler sched;
  const SimResult r = simulate(source, sched, 1);
  EXPECT_EQ(r.stats.task_count, 2u);
  require_valid_schedule(source.realized_graph(), r.schedule, 1);
  const Schedule offline = z_offline_schedule(source);
  require_valid_schedule(source.realized_graph(), offline, 1);
}

TEST(EdgeCases, EqualFinishTimesCascadeCorrectly) {
  // Four tasks finishing at the same instant release a joint successor.
  TaskGraph g;
  for (int k = 0; k < 4; ++k) g.add_task(1.0, 1);
  const TaskId join = g.add_task(1.0, 4, "join");
  for (TaskId id = 0; id < 4; ++id) g.add_edge(id, join);
  CatBatchScheduler sched;
  const SimResult r = simulate(g, sched, 4);
  require_valid_schedule(g, r.schedule, 4);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(join).start, 1.0);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
}

TEST(EdgeCases, WidestFirstBatchOrderPacksWideTasksFirst) {
  // Within one batch: widest-first starts the P-wide task before narrow
  // ones, arrival order starts narrow ones first; both valid, different
  // traces.
  TaskGraph g;
  g.add_task(1.0, 1, "narrow");
  g.add_task(1.0, 4, "wide");
  CatBatchOptions widest;
  widest.batch_order = BatchOrder::WidestFirst;
  CatBatchScheduler w(widest);
  const SimResult rw = simulate(g, w, 4);
  EXPECT_DOUBLE_EQ(rw.schedule.entry_for(1).start, 0.0);
  CatBatchScheduler a;  // arrival order
  const SimResult ra = simulate(g, a, 4);
  EXPECT_DOUBLE_EQ(ra.schedule.entry_for(0).start, 0.0);
  EXPECT_DOUBLE_EQ(rw.makespan, ra.makespan);  // 2 either way
}

}  // namespace
}  // namespace catbatch
