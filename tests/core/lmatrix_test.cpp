#include "core/lmatrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace catbatch {
namespace {

// The L-matrix for C = 6.8 from Figure 5 (left).
TEST(LMatrix, PaperFigure5Values) {
  const LMatrix L(6.8);
  EXPECT_EQ(L.X(), 2);  // 4 < 6.8 <= 8

  EXPECT_DOUBLE_EQ(L.at(1, 1), 6.8);
  EXPECT_DOUBLE_EQ(L.at(1, 2), 0.0);

  EXPECT_DOUBLE_EQ(L.at(2, 1), 4.0);
  EXPECT_NEAR(L.at(2, 2), 2.8, 1e-12);
  EXPECT_DOUBLE_EQ(L.at(2, 3), 0.0);

  EXPECT_DOUBLE_EQ(L.at(3, 1), 2.0);
  EXPECT_DOUBLE_EQ(L.at(3, 2), 2.0);
  EXPECT_DOUBLE_EQ(L.at(3, 3), 2.0);
  EXPECT_DOUBLE_EQ(L.at(3, 4), 0.0);

  for (std::size_t j = 1; j <= 6; ++j) EXPECT_DOUBLE_EQ(L.at(4, j), 1.0);
  EXPECT_NEAR(L.at(4, 7), 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(L.at(4, 8), 0.0);

  for (std::size_t j = 1; j <= 13; ++j) EXPECT_DOUBLE_EQ(L.at(5, j), 0.5);
}

TEST(LMatrix, CategoryAtMatchesPaperLayout) {
  const LMatrix L(6.8);
  // Figure 5 (right): row 1 is χ = X = 2; column j is λ = 2j-1.
  EXPECT_EQ(L.category_at(1, 1), (Category{2, 1}));
  EXPECT_EQ(L.category_at(2, 2), (Category{1, 3}));
  EXPECT_EQ(L.category_at(4, 7), (Category{-1, 13}));
  EXPECT_DOUBLE_EQ(L.category_at(4, 7).value(), 6.5);
}

TEST(LMatrix, CellsEqualCategoryLength) {
  // Lemma 4's closed form must agree with Definition 4 everywhere.
  for (const double c : {6.8, 1.0, 2.0, 5.5, 0.375, 100.0, 1023.0}) {
    const LMatrix L(c);
    for (std::size_t i = 1; i <= 12; ++i) {
      for (std::size_t j = 1; j <= 40; ++j) {
        EXPECT_DOUBLE_EQ(L.at(i, j), category_length(L.category_at(i, j), c))
            << "C=" << c << " cell (" << i << "," << j << ")";
      }
    }
  }
}

TEST(LMatrix, XBracketInvariant) {
  for (const double c : {0.1, 0.5, 1.0, 1.5, 2.0, 4.0, 6.8, 8.0, 1000.0}) {
    const LMatrix L(c);
    EXPECT_LT(std::ldexp(1.0, L.X()), c);
    EXPECT_LE(c, std::ldexp(1.0, L.X() + 1));
  }
}

TEST(LMatrix, RowsAreNonIncreasing) {
  // Theorem 1, Claim 1's premise.
  const LMatrix L(6.8);
  for (std::size_t i = 1; i <= 8; ++i) {
    for (std::size_t j = 1; j <= 30; ++j) {
      EXPECT_GE(L.at(i, j), L.at(i, j + 1));
    }
  }
}

TEST(LMatrix, LastPositiveOfRowAtLeastFirstOfNextRow) {
  // Theorem 1, Claim 1: row-major walk picks the largest values.
  for (const double c : {6.8, 3.3, 9.1, 100.5}) {
    const LMatrix L(c);
    for (std::size_t i = 1; i <= 10; ++i) {
      const std::size_t count = L.positive_count_in_row(i);
      ASSERT_GE(count, 1u);
      EXPECT_GE(L.at(i, count), L.at(i + 1, 1)) << "C=" << c << " row " << i;
    }
  }
}

TEST(LMatrix, RowSumsAtMostCriticalPath) {
  // Theorem 1, Claim 2.
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const double c =
        static_cast<double>(rng.uniform_int(1, 1 << 16)) * 0x1.0p-4;
    const LMatrix L(c);
    for (std::size_t i = 1; i <= 10; ++i) {
      EXPECT_LE(L.row_sum(i), c * (1.0 + 1e-12)) << "C=" << c << " row " << i;
    }
  }
}

TEST(LMatrix, RowPositiveCounts) {
  // Theorem 1 Claim 2: row 1 has exactly one positive value; row i >= 2 has
  // at least 2^{i-2}; Theorem 2 Claim 3: at most 2^{i-1}.
  for (const double c : {6.8, 4.1, 7.99, 33.0}) {
    const LMatrix L(c);
    EXPECT_EQ(L.positive_count_in_row(1), 1u);
    for (std::size_t i = 2; i <= 10; ++i) {
      const std::size_t count = L.positive_count_in_row(i);
      EXPECT_GE(count, std::size_t{1} << (i - 2));
      EXPECT_LE(count, std::size_t{1} << (i - 1));
    }
  }
}

TEST(LMatrix, TopSumBoundedByTheorem1Claim3) {
  // Sum of any n values <= (log2(n) + 1) * C.
  for (const double c : {6.8, 1.5, 12.0}) {
    const LMatrix L(c);
    for (const std::size_t n : {1u, 2u, 3u, 5u, 8u, 17u, 64u, 100u, 500u}) {
      const double bound = (std::log2(static_cast<double>(n)) + 1.0) * c;
      EXPECT_LE(L.top_sum(n), bound * (1.0 + 1e-12))
          << "C=" << c << " n=" << n;
    }
  }
}

TEST(LMatrix, TopValuesAreSortedAndPositive) {
  const LMatrix L(6.8);
  const auto values = L.top_values(20);
  ASSERT_EQ(values.size(), 20u);
  for (std::size_t k = 1; k < values.size(); ++k) {
    EXPECT_LE(values[k], values[k - 1]);
    EXPECT_GT(values[k], 0.0);
  }
  EXPECT_DOUBLE_EQ(values[0], 6.8);
}

TEST(CategoryLength, PaperFigure4Values) {
  const double C = 6.8;
  EXPECT_DOUBLE_EQ(category_length(Category{2, 1}, C), 6.8);   // ζ=4: A,E,I
  EXPECT_DOUBLE_EQ(category_length(Category{1, 1}, C), 4.0);   // ζ=2: C,D
  EXPECT_DOUBLE_EQ(category_length(Category{0, 1}, C), 2.0);   // ζ=1: B
  EXPECT_DOUBLE_EQ(category_length(Category{0, 5}, C), 2.0);   // ζ=5: H,K
  EXPECT_DOUBLE_EQ(category_length(Category{-1, 7}, C), 1.0);  // ζ=3.5: F,G
  EXPECT_NEAR(category_length(Category{-1, 13}, C), 0.8, 1e-12);  // ζ=6.5: J
}

TEST(CategoryLength, ZeroBeyondCriticalPath) {
  EXPECT_DOUBLE_EQ(category_length(Category{3, 1}, 6.8), 0.0);   // ζ=8 >= C
  EXPECT_DOUBLE_EQ(category_length(Category{-1, 15}, 6.8), 0.0);  // ζ=7.5
}

TEST(CategoryLength, NeverExceedsTwoToChiPlusOne) {
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const int chi = static_cast<int>(rng.uniform_int(-6, 6));
    const std::int64_t lambda = 2 * rng.uniform_int(0, 40) + 1;
    const double c =
        static_cast<double>(rng.uniform_int(1, 1 << 12)) * 0x1.0p-2;
    const Time len = category_length(Category{chi, lambda}, c);
    EXPECT_LE(len, std::ldexp(1.0, chi + 1));
    EXPECT_GE(len, 0.0);
  }
}

TEST(BoundedCategoryLength, ReducedUnchangedImpossible) {
  // Figure 7 (right): C = 6.8, m = 0.9, M = 2.3.
  const double C = 6.8, m = 0.9, M = 2.3;
  // R rows: values clipped to M.
  EXPECT_DOUBLE_EQ(bounded_category_length(Category{2, 1}, C, m, M), 2.3);
  EXPECT_DOUBLE_EQ(bounded_category_length(Category{1, 1}, C, m, M), 2.3);
  EXPECT_NEAR(bounded_category_length(Category{1, 3}, C, m, M), 2.3, 1e-12);
  // U rows: unchanged.
  EXPECT_DOUBLE_EQ(bounded_category_length(Category{0, 1}, C, m, M), 2.0);
  EXPECT_DOUBLE_EQ(bounded_category_length(Category{-1, 1}, C, m, M), 1.0);
  // 0.8 < m = 0.9 -> impossible.
  EXPECT_DOUBLE_EQ(bounded_category_length(Category{-1, 13}, C, m, M), 0.0);
  // I rows: everything below m vanishes.
  EXPECT_DOUBLE_EQ(bounded_category_length(Category{-2, 1}, C, m, M), 0.0);
}

TEST(BoundedCategoryLength, ValidatesBounds) {
  EXPECT_THROW(
      (void)bounded_category_length(Category{0, 1}, 6.8, 0.0, 1.0),
      ContractViolation);
  EXPECT_THROW(
      (void)bounded_category_length(Category{0, 1}, 6.8, 2.0, 1.0),
      ContractViolation);
}

TEST(TheoremBounds, Formulas) {
  EXPECT_DOUBLE_EQ(theorem1_bound(1), 3.0);
  EXPECT_DOUBLE_EQ(theorem1_bound(8), 6.0);
  EXPECT_DOUBLE_EQ(theorem2_bound(8.0, 1.0), 9.0);
  EXPECT_DOUBLE_EQ(theorem2_bound(1.0, 1.0), 6.0);
  EXPECT_DOUBLE_EQ(theorem3_bound_n(32), 1.0);
  EXPECT_DOUBLE_EQ(theorem3_bound_ratio(32.0, 1.0), 1.0);
  EXPECT_THROW((void)theorem1_bound(0), ContractViolation);
}

TEST(LMatrix, RejectsNonPositiveCriticalPath) {
  EXPECT_THROW(LMatrix(0.0), ContractViolation);
  EXPECT_THROW(LMatrix(-1.0), ContractViolation);
}

}  // namespace
}  // namespace catbatch
