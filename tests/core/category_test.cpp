#include "core/category.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "instances/random_dags.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace catbatch {
namespace {

TEST(Category, KnownSmallIntervals) {
  // (s∞, f∞) -> ζ, hand-checked against Definition 2 / Figure 2.
  EXPECT_DOUBLE_EQ(compute_category(0.0, 1.0).value(), 0.5);
  EXPECT_DOUBLE_EQ(compute_category(0.0, 2.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(compute_category(0.0, 2.5).value(), 2.0);
  EXPECT_DOUBLE_EQ(compute_category(0.0, 6.0).value(), 4.0);
  EXPECT_DOUBLE_EQ(compute_category(2.0, 4.8).value(), 4.0);
  EXPECT_DOUBLE_EQ(compute_category(3.0, 3.6).value(), 3.5);
  EXPECT_DOUBLE_EQ(compute_category(3.0, 3.8).value(), 3.5);
  EXPECT_DOUBLE_EQ(compute_category(4.8, 6.0).value(), 5.0);
  EXPECT_DOUBLE_EQ(compute_category(3.6, 4.2).value(), 4.0);
  EXPECT_DOUBLE_EQ(compute_category(6.0, 6.8).value(), 6.5);
}

TEST(Category, PaperExampleAttributes) {
  // The full (λ, χ) pairs of Figure 3's table.
  const Category b = compute_category(0.0, 2.0);
  EXPECT_EQ(b.longitude, 1);
  EXPECT_EQ(b.power_level, 0);
  const Category f = compute_category(3.0, 3.6);
  EXPECT_EQ(f.longitude, 7);
  EXPECT_EQ(f.power_level, -1);
  const Category h = compute_category(4.8, 6.0);
  EXPECT_EQ(h.longitude, 5);
  EXPECT_EQ(h.power_level, 0);
  const Category j = compute_category(6.0, 6.8);
  EXPECT_EQ(j.longitude, 13);
  EXPECT_EQ(j.power_level, -1);
  const Category a = compute_category(0.0, 6.0);
  EXPECT_EQ(a.longitude, 1);
  EXPECT_EQ(a.power_level, 2);
}

TEST(Category, RejectsDegenerateIntervals) {
  EXPECT_THROW((void)compute_category(1.0, 1.0), ContractViolation);
  EXPECT_THROW((void)compute_category(2.0, 1.0), ContractViolation);
  EXPECT_THROW((void)compute_category(-0.5, 1.0), ContractViolation);
}

TEST(Category, ValueOrderingMatchesRealOrdering) {
  const Category c1 = compute_category(0.0, 1.0);   // 0.5
  const Category c2 = compute_category(0.0, 2.0);   // 1
  const Category c3 = compute_category(4.8, 6.0);   // 5
  EXPECT_LT(c1, c2);
  EXPECT_LT(c2, c3);
  EXPECT_EQ(c1, compute_category(0.25, 0.75));  // also 0.5
}

TEST(Category, TinyAndHugeScales) {
  // Power levels far from zero must still be exact.
  const Category tiny = compute_category(0.0, 0x1.0p-30);
  EXPECT_EQ(tiny.power_level, -31);
  EXPECT_EQ(tiny.longitude, 1);
  const Category huge = compute_category(0.0, 0x1.0p40);
  EXPECT_EQ(huge.power_level, 39);
  EXPECT_EQ(huge.longitude, 1);
}

// ---------------------------------------------------------------------------
// Property sweep: Lemma 2 invariants over a grid of exact binary intervals.

struct IntervalCase {
  double s;
  double f;
};

class CategoryLemma2Property : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CategoryLemma2Property, InvariantsHold) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    // Exact binary fractions: s, t multiples of 2^-12 in wide ranges.
    const double quantum = 0x1.0p-12;
    const double s =
        static_cast<double>(rng.uniform_int(0, 1 << 20)) * quantum;
    const double t =
        static_cast<double>(rng.uniform_int(1, 1 << 16)) * quantum;
    const double f = s + t;
    const Category cat = compute_category(s, f);

    // λ odd and positive.
    ASSERT_GE(cat.longitude, 1);
    ASSERT_EQ(cat.longitude % 2, 1);

    const double step = std::ldexp(1.0, cat.power_level);
    const double zeta = cat.value();
    // Definition 2/3: s < λ2^χ < f.
    ASSERT_LT(s, zeta);
    ASSERT_LT(zeta, f);
    // Lemma 2 bracketing.
    ASSERT_LE(static_cast<double>(cat.longitude - 1) * step, s);
    ASSERT_LE(f, static_cast<double>(cat.longitude + 1) * step);
    // Maximality: no multiple of 2^{χ+1} lies strictly inside (s, f).
    const double bigger = 2.0 * step;
    const double first_mult = (std::floor(s / bigger) + 1.0) * bigger;
    ASSERT_GE(first_mult, f)
        << "power level " << cat.power_level << " not maximal for (" << s
        << ", " << f << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CategoryLemma2Property,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Lemma 5 over random DAGs: a dependency implies strictly increasing ζ.

class CategoryLemma5Property : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CategoryLemma5Property, DependencyImpliesStrictlySmallerCategory) {
  Rng rng(GetParam());
  const TaskGraph g = random_layered_dag(rng, 120, 10, RandomTaskParams{});
  const auto cats = compute_categories(g);
  for (TaskId id = 0; id < g.size(); ++id) {
    for (const TaskId succ : g.successors(id)) {
      EXPECT_LT(cats[id].value(), cats[succ].value())
          << "edge " << id << " -> " << succ;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CategoryLemma5Property,
                         ::testing::Values(11, 22, 33, 44));

TEST(Category, SameCategoryTasksAreIndependent) {
  // Corollary of Lemma 5 used by ScheduleIndep.
  Rng rng(55);
  const TaskGraph g = random_series_parallel(rng, 150, 0.5,
                                             RandomTaskParams{});
  const auto cats = compute_categories(g);
  for (TaskId i = 0; i < g.size(); ++i) {
    for (TaskId j = i + 1; j < g.size(); ++j) {
      if (cats[i] == cats[j]) {
        EXPECT_FALSE(g.reaches(i, j));
        EXPECT_FALSE(g.reaches(j, i));
      }
    }
  }
}

TEST(Category, MatchesBruteForceEnumeration) {
  // Differential test: brute-force the definition — scan (χ, λ) pairs over
  // a wide window and take the maximal χ admitting a multiple inside the
  // open interval — and compare with the closed-form search.
  Rng rng(101);
  for (int trial = 0; trial < 300; ++trial) {
    const double quantum = 0x1.0p-8;
    const double s =
        static_cast<double>(rng.uniform_int(0, 1 << 12)) * quantum;
    const double t =
        static_cast<double>(rng.uniform_int(1, 1 << 10)) * quantum;
    const double f = s + t;

    int best_chi = -100;
    std::int64_t best_lambda = -1;
    for (int chi = 16; chi >= -12; --chi) {
      const double step = std::ldexp(1.0, chi);
      const auto lo = static_cast<std::int64_t>(std::floor(s / step)) + 1;
      if (static_cast<double>(lo) * step < f) {
        best_chi = chi;
        best_lambda = lo;
        break;  // scanning downward: first hit is the maximum χ
      }
    }
    ASSERT_GT(best_lambda, 0) << "(" << s << ", " << f << ")";
    const Category cat = compute_category(s, f);
    EXPECT_EQ(cat.power_level, best_chi) << "(" << s << ", " << f << ")";
    EXPECT_EQ(cat.longitude, best_lambda) << "(" << s << ", " << f << ")";
  }
}

TEST(Category, EvenLongitudePointsHaveAPointDirectlyAbove) {
  // The Figure 2 lattice argument behind Lemma 2: every (χ, even λ) value
  // equals some (χ+1, λ/2) value, so maximal points must have odd λ.
  for (int chi = -6; chi <= 6; ++chi) {
    for (std::int64_t lambda = 2; lambda <= 64; lambda += 2) {
      EXPECT_DOUBLE_EQ(category_value(chi, lambda),
                       category_value(chi + 1, lambda / 2));
    }
  }
}

TEST(Category, CategoryValueHelperMatchesLdexp) {
  EXPECT_DOUBLE_EQ(category_value(-1, 13), 6.5);
  EXPECT_DOUBLE_EQ(category_value(2, 1), 4.0);
  EXPECT_DOUBLE_EQ(category_value(0, 5), 5.0);
}

TEST(Category, ComputeCategoriesMatchesPerTaskComputation) {
  Rng rng(77);
  const TaskGraph g = random_out_tree(rng, 60, 3, RandomTaskParams{});
  const auto crit = compute_criticalities(g);
  const auto cats = compute_categories(g, crit);
  ASSERT_EQ(cats.size(), g.size());
  for (TaskId id = 0; id < g.size(); ++id) {
    EXPECT_EQ(cats[id], compute_category(crit[id]));
  }
}

}  // namespace
}  // namespace catbatch
