#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include "instances/random_dags.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

TaskGraph two_chains() {
  // chain A: 2 + 3 (p=2), chain B: 4 (p=1)
  TaskGraph g;
  g.add_task(2.0, 2);
  g.add_task(3.0, 2);
  g.add_task(4.0, 1);
  g.add_edge(0, 1);
  return g;
}

TEST(Bounds, AreaAndCriticalPath) {
  const InstanceBounds b = compute_bounds(two_chains(), 4);
  EXPECT_EQ(b.task_count, 3u);
  EXPECT_DOUBLE_EQ(b.area, 2.0 * 2 + 3.0 * 2 + 4.0 * 1);  // 14
  EXPECT_DOUBLE_EQ(b.critical_path, 5.0);
  EXPECT_DOUBLE_EQ(b.min_work, 2.0);
  EXPECT_DOUBLE_EQ(b.max_work, 4.0);
}

TEST(Bounds, LowerBoundIsMaxOfAreaAndCriticalPath) {
  // P=2: A/P = 7 > C = 5 -> 7. P=4: A/P = 3.5 < 5 -> 5.
  EXPECT_DOUBLE_EQ(makespan_lower_bound(two_chains(), 2), 7.0);
  EXPECT_DOUBLE_EQ(makespan_lower_bound(two_chains(), 4), 5.0);
}

TEST(Bounds, EmptyInstance) {
  const TaskGraph g;
  const InstanceBounds b = compute_bounds(g, 4);
  EXPECT_EQ(b.task_count, 0u);
  EXPECT_DOUBLE_EQ(b.lower_bound(), 0.0);
}

TEST(Bounds, RejectsTooWideTasks) {
  TaskGraph g;
  g.add_task(1.0, 8);
  EXPECT_THROW((void)compute_bounds(g, 4), ContractViolation);
  EXPECT_NO_THROW((void)compute_bounds(g, 8));
}

TEST(Bounds, RejectsNonPositivePlatform) {
  EXPECT_THROW((void)compute_bounds(TaskGraph{}, 0), ContractViolation);
}

TEST(Bounds, SingleTaskLowerBoundIsItsLength) {
  TaskGraph g;
  g.add_task(7.5, 3);
  EXPECT_DOUBLE_EQ(makespan_lower_bound(g, 8), 7.5);
  // On exactly 3 processors, area bound equals length too.
  EXPECT_DOUBLE_EQ(makespan_lower_bound(g, 3), 7.5);
}

TEST(Bounds, LowerBoundMonotoneInProcs) {
  Rng rng(4);
  const TaskGraph g = random_layered_dag(rng, 100, 8, RandomTaskParams{});
  Time prev = makespan_lower_bound(g, 16);
  for (const int p : {24, 32, 64, 128}) {
    const Time lb = makespan_lower_bound(g, p);
    EXPECT_LE(lb, prev);
    prev = lb;
  }
  // Never below the critical path.
  EXPECT_GE(prev, critical_path_length(g) - 1e-12);
}

}  // namespace
}  // namespace catbatch
