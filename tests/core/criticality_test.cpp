#include "core/criticality.hpp"

#include <gtest/gtest.h>

#include "instances/random_dags.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

TEST(Criticality, RootsStartAtZero) {
  TaskGraph g;
  g.add_task(2.0, 1);
  g.add_task(3.0, 1);
  const auto crit = compute_criticalities(g);
  EXPECT_DOUBLE_EQ(crit[0].earliest_start, 0.0);
  EXPECT_DOUBLE_EQ(crit[0].earliest_finish, 2.0);
  EXPECT_DOUBLE_EQ(crit[1].earliest_start, 0.0);
  EXPECT_DOUBLE_EQ(crit[1].earliest_finish, 3.0);
}

TEST(Criticality, ChainAccumulates) {
  TaskGraph g;
  g.add_task(1.0, 1);
  g.add_task(2.0, 1);
  g.add_task(4.0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto crit = compute_criticalities(g);
  EXPECT_DOUBLE_EQ(crit[2].earliest_start, 3.0);
  EXPECT_DOUBLE_EQ(crit[2].earliest_finish, 7.0);
  EXPECT_DOUBLE_EQ(critical_path_length(crit), 7.0);
}

TEST(Criticality, JoinTakesMaxOfPredecessors) {
  TaskGraph g;
  g.add_task(1.0, 1);
  g.add_task(5.0, 1);
  g.add_task(1.0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  const auto crit = compute_criticalities(g);
  EXPECT_DOUBLE_EQ(crit[2].earliest_start, 5.0);  // Lemma 1: max f∞
}

TEST(Criticality, CriticalPathOfEmptyGraphIsZero) {
  TaskGraph g;
  EXPECT_DOUBLE_EQ(critical_path_length(g), 0.0);
}

TEST(Criticality, OnlineRecurrenceMatchesOffline) {
  // criticality_from_predecessors run over a topological order must
  // reproduce compute_criticalities exactly (Lemma 1).
  Rng rng(2024);
  const TaskGraph g = random_layered_dag(rng, 200, 12, RandomTaskParams{});
  const auto offline = compute_criticalities(g);
  std::vector<Criticality> online(g.size());
  for (const TaskId id : g.topological_order()) {
    std::vector<Time> pred_finish;
    for (const TaskId pred : g.predecessors(id)) {
      pred_finish.push_back(online[pred].earliest_finish);
    }
    online[id] = criticality_from_predecessors(g.task(id).work, pred_finish);
  }
  for (TaskId id = 0; id < g.size(); ++id) {
    EXPECT_EQ(online[id], offline[id]) << "task " << id;
  }
}

TEST(Criticality, IntervalLengthEqualsWork) {
  Rng rng(7);
  const TaskGraph g = random_order_dag(rng, 100, 0.05, RandomTaskParams{});
  const auto crit = compute_criticalities(g);
  for (TaskId id = 0; id < g.size(); ++id) {
    EXPECT_DOUBLE_EQ(crit[id].earliest_finish - crit[id].earliest_start,
                     g.task(id).work);
  }
}

TEST(Criticality, OverlappingIntervalsImplyIndependence) {
  // Section 4.1: if two criticality intervals overlap there is no path
  // between the tasks.
  Rng rng(11);
  const TaskGraph g = random_layered_dag(rng, 80, 8, RandomTaskParams{});
  const auto crit = compute_criticalities(g);
  for (TaskId i = 0; i < g.size(); ++i) {
    for (TaskId j = 0; j < g.size(); ++j) {
      if (i == j) continue;
      const bool overlap =
          crit[i].earliest_start < crit[j].earliest_finish &&
          crit[j].earliest_start < crit[i].earliest_finish;
      if (overlap) {
        EXPECT_FALSE(g.reaches(i, j))
            << "path between tasks with overlapping criticalities";
      }
    }
  }
}

TEST(Criticality, FromPredecessorsValidatesInput) {
  EXPECT_THROW((void)criticality_from_predecessors(0.0, {}),
               ContractViolation);
  EXPECT_THROW((void)criticality_from_predecessors(1.0, {-1.0}),
               ContractViolation);
  const Criticality c = criticality_from_predecessors(2.0, {1.0, 3.0});
  EXPECT_DOUBLE_EQ(c.earliest_start, 3.0);
  EXPECT_DOUBLE_EQ(c.earliest_finish, 5.0);
}

TEST(Criticality, CriticalPathEqualsMaxFinish) {
  Rng rng(13);
  const TaskGraph g = random_series_parallel(rng, 60, 0.5, RandomTaskParams{});
  const auto crit = compute_criticalities(g);
  Time max_finish = 0.0;
  for (const auto& c : crit) max_finish = std::max(max_finish, c.earliest_finish);
  EXPECT_DOUBLE_EQ(critical_path_length(g), max_finish);
}

}  // namespace
}  // namespace catbatch
