#include "core/soa_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/graph.hpp"
#include "instances/random_dags.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace catbatch {
namespace {

TaskGraph diamond() {
  TaskGraph g;
  const TaskId a = g.add_task(1.0, 1, "a");
  const TaskId b = g.add_task(2.0, 2, "b");
  const TaskId c = g.add_task(3.0, 1, "c");
  const TaskId d = g.add_task(1.0, 4, "d");
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  return g;
}

TEST(SoaGraph, FreezesStructureAndAdjacency) {
  const SoaGraph soa = build_soa_graph(diamond());
  ASSERT_EQ(soa.size(), 4u);
  EXPECT_EQ(soa.edge_count, 4u);
  EXPECT_EQ(soa.max_procs, 4);
  EXPECT_EQ(soa.work[2], 3.0);
  EXPECT_EQ(soa.procs[1], 2);
  ASSERT_EQ(soa.predecessors(3).size(), 2u);
  EXPECT_EQ(soa.predecessors(3)[0], 1u);
  EXPECT_EQ(soa.predecessors(3)[1], 2u);
  ASSERT_EQ(soa.successors(0).size(), 2u);
  EXPECT_EQ(soa.successors(0)[0], 1u);
  EXPECT_EQ(soa.successors(0)[1], 2u);
  // Levels: {a}, {b, c}, {d}.
  ASSERT_EQ(soa.level_count(), 3u);
  EXPECT_EQ(soa.level(0).size(), 1u);
  EXPECT_EQ(soa.level(1).size(), 2u);
  EXPECT_EQ(soa.level(2).size(), 1u);
  EXPECT_EQ(soa.level(1)[0], 1u);
  EXPECT_EQ(soa.level(1)[1], 2u);
}

TEST(SoaGraph, NamesAreOptionalAndArenaBacked) {
  const SoaGraph nameless = build_soa_graph(diamond());
  EXPECT_TRUE(nameless.names.empty());
  EXPECT_EQ(nameless.name(2), "");

  const SoaGraph named = build_soa_graph(diamond(), /*with_names=*/true);
  ASSERT_EQ(named.names.size(), 4u);
  EXPECT_EQ(named.name(0), "a");
  EXPECT_EQ(named.name(3), "d");
}

TEST(SoaGraph, RawBuilderMatchesGraphBuilder) {
  const SoaGraph from_graph = build_soa_graph(diamond());
  const SoaGraph raw = build_soa_graph(
      {1.0, 2.0, 3.0, 1.0}, {1, 2, 1, 4}, {0, 0, 1, 2, 4}, {0, 0, 1, 2});
  EXPECT_EQ(raw.pred_offsets, from_graph.pred_offsets);
  EXPECT_EQ(raw.pred_data, from_graph.pred_data);
  EXPECT_EQ(raw.succ_offsets, from_graph.succ_offsets);
  EXPECT_EQ(raw.succ_data, from_graph.succ_data);
  EXPECT_EQ(raw.level_order, from_graph.level_order);
  EXPECT_EQ(raw.level_offsets, from_graph.level_offsets);
  EXPECT_EQ(raw.max_procs, from_graph.max_procs);
}

TEST(SoaGraph, RawBuilderRejectsBadInput) {
  // Non-positive work.
  EXPECT_THROW(build_soa_graph({0.0}, {1}, {0, 0}, {}), ContractViolation);
  // procs < 1.
  EXPECT_THROW(build_soa_graph({1.0}, {0}, {0, 0}, {}), ContractViolation);
  // Out-of-range predecessor.
  EXPECT_THROW(build_soa_graph({1.0, 1.0}, {1, 1}, {0, 0, 1}, {5}),
               ContractViolation);
  // Self-loop (a 1-cycle).
  EXPECT_THROW(build_soa_graph({1.0}, {1}, {0, 1}, {0}), ContractViolation);
  // A genuine 2-cycle.
  EXPECT_THROW(build_soa_graph({1.0, 1.0}, {1, 1}, {0, 1, 2}, {1, 0}),
               ContractViolation);
}

TEST(SoaGraph, CycleInTaskGraphIsRejected) {
  TaskGraph g;
  const TaskId a = g.add_task(1.0, 1);
  const TaskId b = g.add_task(1.0, 1);
  const TaskId c = g.add_task(1.0, 1);
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(c, a);
  EXPECT_THROW(build_soa_graph(g), ContractViolation);
}

TEST(SoaCriticality, MatchesDiamondByHand) {
  const SoaGraph soa = build_soa_graph(diamond());
  const CriticalityArrays crit = compute_criticalities(soa);
  EXPECT_EQ(crit.earliest_start[0], 0.0);
  EXPECT_EQ(crit.earliest_finish[0], 1.0);
  EXPECT_EQ(crit.earliest_start[1], 1.0);
  EXPECT_EQ(crit.earliest_start[2], 1.0);
  EXPECT_EQ(crit.earliest_start[3], 4.0);  // via c: 1 + 3
  EXPECT_EQ(crit.earliest_finish[3], 5.0);
  EXPECT_EQ(critical_path_length(crit), 5.0);
}

TEST(SoaCriticality, BitIdenticalToAosPassOnRandomDags) {
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    Rng rng(seed);
    RandomTaskParams params;
    params.procs.max_procs = 8;
    const TaskGraph g = random_layered_dag(rng, 400, 25, params);
    const std::vector<Criticality> aos = compute_criticalities(g);
    const SoaGraph soa = build_soa_graph(g);
    const CriticalityArrays arrays = compute_criticalities(soa);
    ASSERT_EQ(arrays.size(), aos.size());
    for (std::size_t i = 0; i < aos.size(); ++i) {
      EXPECT_EQ(aos[i].earliest_start, arrays.earliest_start[i]);
      EXPECT_EQ(aos[i].earliest_finish, arrays.earliest_finish[i]);
    }
    EXPECT_EQ(critical_path_length(g), critical_path_length(arrays));
  }
}

TEST(SoaCriticality, BitIdenticalAtAnyJobCount) {
  Rng rng(99);
  RandomTaskParams params;
  params.procs.max_procs = 16;
  // Wide and shallow so levels actually exceed the parallel block size
  // threshold and the multi-worker path runs.
  const TaskGraph g = random_layered_dag(rng, 20000, 2, params);
  const SoaGraph soa = build_soa_graph(g);
  const CriticalityArrays serial = compute_criticalities(soa, 1);
  for (const int jobs : {2, 3, 8}) {
    const CriticalityArrays par = compute_criticalities(soa, jobs);
    EXPECT_EQ(serial.earliest_start, par.earliest_start) << "jobs=" << jobs;
    EXPECT_EQ(serial.earliest_finish, par.earliest_finish) << "jobs=" << jobs;
  }
}

TEST(SoaCategory, MatchesAosCategoriesAndAllJobCounts) {
  Rng rng(7);
  RandomTaskParams params;
  params.procs.max_procs = 8;
  const TaskGraph g = random_layered_dag(rng, 500, 10, params);
  const std::vector<Category> aos = compute_categories(g);
  const SoaGraph soa = build_soa_graph(g);
  const CriticalityArrays crit = compute_criticalities(soa);
  const std::vector<Category> serial = compute_categories(soa, crit, 1);
  ASSERT_EQ(serial.size(), aos.size());
  for (std::size_t i = 0; i < aos.size(); ++i) {
    EXPECT_EQ(serial[i], aos[i]) << "task " << i;
  }
  const std::vector<Category> parallel = compute_categories(soa, crit, 4);
  EXPECT_EQ(parallel, serial);
}

TEST(SoaBounds, MatchesAosBoundsExactly) {
  Rng rng(13);
  RandomTaskParams params;
  params.procs.max_procs = 8;
  const TaskGraph g = random_layered_dag(rng, 300, 12, params);
  const InstanceBounds aos = compute_bounds(g, 8);
  const SoaGraph soa = build_soa_graph(g);
  const InstanceBounds via_soa = compute_bounds(soa, 8);
  EXPECT_EQ(via_soa.task_count, aos.task_count);
  EXPECT_EQ(via_soa.area, aos.area);  // bit-identical: same summation order
  EXPECT_EQ(via_soa.critical_path, aos.critical_path);
  EXPECT_EQ(via_soa.min_work, aos.min_work);
  EXPECT_EQ(via_soa.max_work, aos.max_work);
  EXPECT_EQ(via_soa.lower_bound(), aos.lower_bound());
}

TEST(SoaBounds, RejectsTooNarrowPlatform) {
  const SoaGraph soa = build_soa_graph(diamond());
  EXPECT_THROW((void)compute_bounds(soa, 2), ContractViolation);
  EXPECT_EQ(compute_bounds(soa, 4).procs, 4);
}

TEST(SoaGraph, EmptyGraphIsFine) {
  const SoaGraph soa = build_soa_graph(TaskGraph{});
  EXPECT_TRUE(soa.empty());
  EXPECT_EQ(soa.level_count(), 0u);
  const CriticalityArrays crit = compute_criticalities(soa);
  EXPECT_EQ(crit.size(), 0u);
  EXPECT_EQ(critical_path_length(crit), 0.0);
  EXPECT_EQ(compute_bounds(soa, 4).lower_bound(), 0.0);
}

}  // namespace
}  // namespace catbatch
