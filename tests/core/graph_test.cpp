#include "core/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/check.hpp"

namespace catbatch {
namespace {

TaskGraph diamond() {
  // 0 -> {1, 2} -> 3
  TaskGraph g;
  g.add_task(1.0, 1, "top");
  g.add_task(2.0, 2, "left");
  g.add_task(3.0, 1, "right");
  g.add_task(1.0, 4, "bottom");
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(TaskGraph, AddTaskAssignsSequentialIds) {
  TaskGraph g;
  EXPECT_EQ(g.add_task(1.0, 1), 0u);
  EXPECT_EQ(g.add_task(1.0, 1), 1u);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_FALSE(g.empty());
}

TEST(TaskGraph, RejectsInvalidTasks) {
  TaskGraph g;
  EXPECT_THROW(g.add_task(0.0, 1), ContractViolation);
  EXPECT_THROW(g.add_task(-1.0, 1), ContractViolation);
  EXPECT_THROW(g.add_task(1.0, 0), ContractViolation);
}

TEST(TaskGraph, EdgesAreIdempotent) {
  TaskGraph g;
  g.add_task(1.0, 1);
  g.add_task(1.0, 1);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.successors(0).size(), 1u);
  EXPECT_EQ(g.predecessors(1).size(), 1u);
}

TEST(TaskGraph, RejectsSelfLoopsAndBadEndpoints) {
  TaskGraph g;
  g.add_task(1.0, 1);
  EXPECT_THROW(g.add_edge(0, 0), ContractViolation);
  EXPECT_THROW(g.add_edge(0, 5), ContractViolation);
  EXPECT_THROW(g.add_edge(5, 0), ContractViolation);
}

TEST(TaskGraph, RootsAndSinks) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.roots(), std::vector<TaskId>{0});
  EXPECT_EQ(g.sinks(), std::vector<TaskId>{3});
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  const TaskGraph g = diamond();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t k = 0; k < order.size(); ++k) pos[order[k]] = k;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(TaskGraph, CycleDetection) {
  TaskGraph g;
  g.add_task(1.0, 1);
  g.add_task(1.0, 1);
  g.add_task(1.0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_acyclic());
  g.add_edge(2, 0);
  EXPECT_FALSE(g.is_acyclic());
  EXPECT_THROW((void)g.topological_order(), ContractViolation);
  EXPECT_THROW(g.validate(), ContractViolation);
}

TEST(TaskGraph, ValidateChecksPlatformWidth) {
  TaskGraph g;
  g.add_task(1.0, 8);
  EXPECT_NO_THROW(g.validate(8));
  EXPECT_THROW(g.validate(4), ContractViolation);
  EXPECT_NO_THROW(g.validate());  // 0 = unconstrained
}

TEST(TaskGraph, AreaAndWorkExtremes) {
  const TaskGraph g = diamond();
  // 1*1 + 2*2 + 3*1 + 1*4 = 12
  EXPECT_DOUBLE_EQ(g.total_area(), 12.0);
  EXPECT_DOUBLE_EQ(g.min_work(), 1.0);
  EXPECT_DOUBLE_EQ(g.max_work(), 3.0);
  EXPECT_EQ(g.max_procs_required(), 4);
}

TEST(TaskGraph, WorkExtremesRejectEmptyGraph) {
  TaskGraph g;
  EXPECT_THROW((void)g.min_work(), ContractViolation);
  EXPECT_THROW((void)g.max_work(), ContractViolation);
  EXPECT_EQ(g.max_procs_required(), 0);
  EXPECT_DOUBLE_EQ(g.total_area(), 0.0);
}

TEST(TaskGraph, DepthCountsHops) {
  EXPECT_EQ(diamond().depth(), 3u);
  TaskGraph chain;
  chain.add_task(1.0, 1);
  chain.add_task(1.0, 1);
  chain.add_task(1.0, 1);
  chain.add_edge(0, 1);
  chain.add_edge(1, 2);
  EXPECT_EQ(chain.depth(), 3u);
  TaskGraph empty;
  EXPECT_EQ(empty.depth(), 0u);
}

TEST(TaskGraph, Reachability) {
  const TaskGraph g = diamond();
  EXPECT_TRUE(g.reaches(0, 3));
  EXPECT_TRUE(g.reaches(1, 3));
  EXPECT_FALSE(g.reaches(1, 2));
  EXPECT_FALSE(g.reaches(3, 0));
  EXPECT_TRUE(g.reaches(2, 2));  // reflexive by convention
}

TEST(TaskGraph, AppendOffsetsIdsAndEdges) {
  TaskGraph g = diamond();
  const TaskGraph other = diamond();
  const TaskId offset = g.append(other);
  EXPECT_EQ(offset, 4u);
  EXPECT_EQ(g.size(), 8u);
  EXPECT_EQ(g.edge_count(), 8u);
  EXPECT_TRUE(g.reaches(4, 7));
  EXPECT_FALSE(g.reaches(0, 4));
  EXPECT_EQ(g.task(5).name, "left");
}

TEST(TaskGraph, TaskAccessorBoundsChecked) {
  TaskGraph g;
  g.add_task(1.0, 1);
  EXPECT_THROW((void)g.task(1), ContractViolation);
  EXPECT_THROW((void)g.predecessors(1), ContractViolation);
  EXPECT_THROW((void)g.successors(1), ContractViolation);
}

}  // namespace
}  // namespace catbatch
