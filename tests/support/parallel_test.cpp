// parallel_chunks() contract: the fixed block partition covers [0, count)
// exactly once for any thread count, the serial path is one body call,
// exceptions surface on the caller, nested regions degrade instead of
// deadlocking, and the global pool keeps the process thread count bounded
// (no per-call pool construction). The ParallelChunks* filter also runs
// under the catbatch_tsan_thread_pool sanitizer target.
#include "support/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "support/thread_pool.hpp"

namespace catbatch {
namespace {

TEST(ParallelChunks, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 10001;  // deliberately not a chunk multiple
  for (const int threads : {1, 2, 8}) {
    for (const std::size_t chunk : {std::size_t{64}, std::size_t{4096}}) {
      std::vector<std::atomic<int>> hits(kCount);
      const ParallelOptions options =
          ParallelOptions{}.with_threads(threads).with_chunk(chunk);
      parallel_chunks(options, kCount, [&](std::size_t lo, std::size_t hi) {
        ASSERT_LE(lo, hi);
        ASSERT_LE(hi, kCount);
        for (std::size_t i = lo; i < hi; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (std::size_t i = 0; i < kCount; ++i) {
        ASSERT_EQ(hits[i].load(), 1)
            << "index " << i << " threads=" << threads << " chunk=" << chunk;
      }
    }
  }
}

TEST(ParallelChunks, SerialPathIsOneFullRangeCall) {
  // threads <= 1 and fewer-than-two-blocks both take the single-call path.
  for (const ParallelOptions options :
       {ParallelOptions{}.with_threads(1).with_chunk(8),
        ParallelOptions{}.with_threads(8).with_chunk(1000)}) {
    std::vector<std::pair<std::size_t, std::size_t>> calls;
    parallel_chunks(options, 100, [&](std::size_t lo, std::size_t hi) {
      calls.emplace_back(lo, hi);
    });
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_EQ(calls.front().first, 0u);
    EXPECT_EQ(calls.front().second, 100u);
  }
  // Zero count never invokes the body.
  parallel_chunks(ParallelOptions{}.with_threads(4), 0,
                  [](std::size_t, std::size_t) { FAIL(); });
}

TEST(ParallelChunks, BodyExceptionRethrownOnCaller) {
  const ParallelOptions options =
      ParallelOptions{}.with_threads(4).with_chunk(16);
  EXPECT_THROW(
      parallel_chunks(options, 1000,
                      [&](std::size_t lo, std::size_t) {
                        if (lo >= 512) throw std::runtime_error("boom");
                      }),
      std::runtime_error);
  // The pool survives the exception and keeps dispatching.
  std::atomic<int> covered{0};
  parallel_chunks(options, 1000, [&](std::size_t lo, std::size_t hi) {
    covered.fetch_add(static_cast<int>(hi - lo), std::memory_order_relaxed);
  });
  EXPECT_EQ(covered.load(), 1000);
}

TEST(ParallelChunks, NestedRegionsDegradeWithoutDeadlock) {
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 64;
  const ParallelOptions options =
      ParallelOptions{}.with_threads(4).with_chunk(1);
  std::vector<std::atomic<int>> inner_hits(kInner);
  parallel_chunks(options, kOuter, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t o = lo; o < hi; ++o) {
      // A body running on a borrowed pool worker must degrade its own
      // parallel region to serial (never wait on another borrowed worker);
      // either way the inner partition covers every index exactly once.
      parallel_chunks(ParallelOptions{}.with_threads(4).with_chunk(8), kInner,
                      [&](std::size_t ilo, std::size_t ihi) {
                        for (std::size_t i = ilo; i < ihi; ++i) {
                          inner_hits[i].fetch_add(1,
                                                  std::memory_order_relaxed);
                        }
                      });
    }
  });
  for (std::size_t i = 0; i < kInner; ++i) {
    ASSERT_EQ(inner_hits[i].load(), static_cast<int>(kOuter)) << i;
  }
}

/// Threads row of /proc/self/status, or -1 where procfs is unavailable.
int process_thread_count() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  int threads = -1;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "Threads: %d", &threads) == 1) break;
  }
  std::fclose(f);
  return threads;
}

TEST(ParallelChunks, GlobalPoolKeepsProcessThreadCountBounded) {
  const int before = process_thread_count();
  if (before < 0) GTEST_SKIP() << "/proc/self/status not available";
  // A blocking-subsystem pool (the daemon strands) coexisting with many
  // chunked dispatches: the process gains at most that pool's workers plus
  // the one global pool — repeated parallel_chunks calls must not stack
  // private pools the way the per-call-ThreadPool design did.
  ThreadPool strands(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sink{0};
    parallel_chunks(ParallelOptions{}.with_threads(8).with_chunk(64), 4096,
                    [&](std::size_t lo, std::size_t hi) {
                      sink.fetch_add(static_cast<int>(hi - lo),
                                     std::memory_order_relaxed);
                    });
    ASSERT_EQ(sink.load(), 4096);
  }
  const int after = process_thread_count();
  ASSERT_GT(after, 0);
  EXPECT_LE(after, before + 4 + global_pool().thread_count())
      << "parallel_chunks dispatches must share the one global pool";
}

}  // namespace
}  // namespace catbatch
