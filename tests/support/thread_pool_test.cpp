#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <vector>

#include "support/check.hpp"

namespace catbatch {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<int> sum{0};
  for (int k = 1; k <= 100; ++k) {
    pool.submit([&sum, k] { sum.fetch_add(k); });
  }
  pool.wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, ZeroTaskShutdownDoesNotDeadlock) {
  ThreadPool pool(3);
  // Destructor joins with nothing ever submitted.
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait();
  pool.submit([] {});
  pool.wait();
  pool.wait();  // idempotent
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int k = 0; k < 16; ++k) {
    pool.submit([&completed] { completed.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error is consumed: the pool stays usable afterwards.
  pool.submit([&completed] { completed.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(completed.load(), 17);
}

TEST(ThreadPool, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>{}), ContractViolation);
}

TEST(ThreadPool, ResolveJobsPassesPositiveThrough) {
  EXPECT_EQ(ThreadPool::resolve_jobs(3), 3);
  EXPECT_GE(ThreadPool::resolve_jobs(0), 1);
  EXPECT_GE(ThreadPool::resolve_jobs(-5), 1);
}

TEST(ThreadPool, DefaultJobsHonoursEnvironment) {
  ::setenv("CATBATCH_JOBS", "13", 1);
  EXPECT_EQ(ThreadPool::default_jobs(), 13);
  ::setenv("CATBATCH_JOBS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::default_jobs(), 1);  // falls back to hardware
  ::unsetenv("CATBATCH_JOBS");
  EXPECT_GE(ThreadPool::default_jobs(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const int jobs : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(jobs, hits.size(),
                 [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, HandlesEdgeCounts) {
  std::atomic<int> calls{0};
  parallel_for(8, 0, [&calls](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  parallel_for(8, 1, [&calls](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
  // More jobs than work.
  parallel_for(64, 3, [&calls](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 4);
}

TEST(ParallelFor, PropagatesBodyException) {
  EXPECT_THROW(
      parallel_for(4, 64,
                   [](std::size_t i) {
                     if (i == 17) throw std::runtime_error("body failed");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, SerialPathPreservesOrder) {
  std::vector<std::size_t> order;
  parallel_for(1, 5, [&order](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace catbatch
