#include "support/text.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace catbatch {
namespace {

TEST(FormatNumber, TrimsTrailingZeros) {
  EXPECT_EQ(format_number(6.8), "6.8");
  EXPECT_EQ(format_number(15.2), "15.2");
  EXPECT_EQ(format_number(2.0), "2");
  EXPECT_EQ(format_number(0.5), "0.5");
}

TEST(FormatNumber, RespectsPrecision) {
  EXPECT_EQ(format_number(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(format_number(1.0 / 3.0, 1), "0.3");
}

TEST(FormatNumber, HandlesZeroAndNegatives) {
  EXPECT_EQ(format_number(0.0), "0");
  EXPECT_EQ(format_number(-2.5), "-2.5");
  EXPECT_EQ(format_number(-0.0), "0");
}

TEST(FormatNumber, HandlesNonFinite) {
  EXPECT_EQ(format_number(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(format_number(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_number(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");  // never truncates
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

TEST(Join, EmptySingleAndMany) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Repeated, BuildsRuns) {
  EXPECT_EQ(repeated('-', 3), "---");
  EXPECT_EQ(repeated('x', 0), "");
}

TEST(ParseInteger, AcceptsWholeStringIntegersOnly) {
  EXPECT_EQ(parse_integer("0"), 0);
  EXPECT_EQ(parse_integer("42"), 42);
  EXPECT_EQ(parse_integer("-17"), -17);
  EXPECT_EQ(parse_integer("+9"), 9);
  EXPECT_EQ(parse_integer("9223372036854775807"),
            std::numeric_limits<std::int64_t>::max());
}

TEST(ParseInteger, RejectsJunkWhitespaceAndOverflow) {
  EXPECT_EQ(parse_integer(""), std::nullopt);
  EXPECT_EQ(parse_integer(" 1"), std::nullopt);
  EXPECT_EQ(parse_integer("1 "), std::nullopt);
  EXPECT_EQ(parse_integer("12x"), std::nullopt);
  EXPECT_EQ(parse_integer("x12"), std::nullopt);
  EXPECT_EQ(parse_integer("1.5"), std::nullopt);
  EXPECT_EQ(parse_integer("0x10"), std::nullopt);
  EXPECT_EQ(parse_integer("+"), std::nullopt);
  EXPECT_EQ(parse_integer("-"), std::nullopt);
  EXPECT_EQ(parse_integer("+-5"), std::nullopt);
  EXPECT_EQ(parse_integer("9223372036854775808"), std::nullopt);  // overflow
}

}  // namespace
}  // namespace catbatch
