#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

namespace catbatch {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int k = 0; k < 100; ++k) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::array<std::uint64_t, 8> first{};
  for (auto& v : first) v = a();
  a.reseed(7);
  for (const auto v : first) EXPECT_EQ(a(), v);
}

TEST(Rng, UniformIntCoversFullInclusiveRange) {
  Rng rng(99);
  std::array<int, 5> seen{};
  for (int k = 0; k < 2000; ++k) {
    const auto v = rng.uniform_int(0, 4);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 4);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (const int count : seen) EXPECT_GT(count, 0);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(5);
  for (int k = 0; k < 10; ++k) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(17);
  for (int k = 0; k < 200; ++k) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform_int(3, 2), ContractViolation);
}

TEST(Rng, UniformRealStaysInHalfOpenRange) {
  Rng rng(31);
  for (int k = 0; k < 1000; ++k) {
    const double v = rng.uniform_real(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, UniformRealMeanIsCentred) {
  Rng rng(77);
  double sum = 0.0;
  const int trials = 20000;
  for (int k = 0; k < trials; ++k) sum += rng.uniform_real(0.0, 1.0);
  EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int k = 0; k < 100; ++k) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRejectsOutOfRange) {
  Rng rng(3);
  EXPECT_THROW((void)rng.bernoulli(-0.1), ContractViolation);
  EXPECT_THROW((void)rng.bernoulli(1.1), ContractViolation);
}

TEST(Rng, BoundedParetoStaysInRange) {
  Rng rng(11);
  for (int k = 0; k < 1000; ++k) {
    const double v = rng.bounded_pareto(1.0, 100.0, 1.5);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST(Rng, BoundedParetoIsHeavyTailed) {
  // Most mass near the lower bound for alpha > 1.
  Rng rng(13);
  int below_ten = 0;
  const int trials = 5000;
  for (int k = 0; k < trials; ++k) {
    if (rng.bounded_pareto(1.0, 1000.0, 1.5) < 10.0) ++below_ten;
  }
  EXPECT_GT(below_ten, trials * 8 / 10);
}

TEST(Rng, IndexStaysBelowBound) {
  Rng rng(19);
  for (int k = 0; k < 500; ++k) EXPECT_LT(rng.index(7), 7u);
  EXPECT_THROW((void)rng.index(0), ContractViolation);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace catbatch
