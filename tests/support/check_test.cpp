#include "support/check.hpp"

#include <gtest/gtest.h>

namespace catbatch {
namespace {

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(CB_CHECK(1 + 1 == 2, "arithmetic works"));
}

TEST(Check, FailingCheckThrowsContractViolation) {
  EXPECT_THROW(CB_CHECK(false, "always fails"), ContractViolation);
}

TEST(Check, MessageContainsExpressionAndText) {
  try {
    CB_CHECK(2 < 1, "two is not less than one");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
    EXPECT_EQ(e.expression(), "2 < 1");
  }
}

TEST(Check, MessageContainsSourceLocation) {
  try {
    CB_CHECK(false, "location probe");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("check_test.cpp"),
              std::string::npos);
  }
}

TEST(Check, DcheckActiveInThisBuild) {
  // The build strips NDEBUG so lemma-level invariants stay on.
  EXPECT_THROW(CB_DCHECK(false, "dcheck probe"), ContractViolation);
}

TEST(Check, ContractViolationIsLogicError) {
  EXPECT_THROW(CB_CHECK(false, "hierarchy"), std::logic_error);
}

}  // namespace
}  // namespace catbatch
