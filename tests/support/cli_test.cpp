#include "support/cli.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>

namespace catbatch {
namespace {

struct ParseResult {
  bool ok;
  std::int64_t value;
  std::string error;
};

ParseResult parse(std::string_view text, std::int64_t lo, std::int64_t hi) {
  std::ostringstream err;
  std::int64_t out = -12345;
  const bool ok = parse_flag_value("prog", "--flag", text, lo, hi, out, err);
  return {ok, out, err.str()};
}

TEST(CliParseFlag, AcceptsInRangeIntegers) {
  const ParseResult r = parse("42", 1, 100);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 42);
  EXPECT_TRUE(r.error.empty());
}

TEST(CliParseFlag, AcceptsBoundaryValues) {
  EXPECT_TRUE(parse("1", 1, 100).ok);
  EXPECT_TRUE(parse("100", 1, 100).ok);
  EXPECT_TRUE(parse("-5", -5, 5).ok);
}

TEST(CliParseFlag, RejectsOutOfRange) {
  EXPECT_FALSE(parse("0", 1, 100).ok);
  EXPECT_FALSE(parse("101", 1, 100).ok);
  EXPECT_FALSE(parse("-1", 0, std::numeric_limits<std::int64_t>::max()).ok);
}

TEST(CliParseFlag, RejectsNonNumericJunk) {
  EXPECT_FALSE(parse("banana", 0, 100).ok);
  EXPECT_FALSE(parse("", 0, 100).ok);
  EXPECT_FALSE(parse("0x10", 0, 100).ok);
  EXPECT_FALSE(parse("12abc", 0, 100).ok);
  EXPECT_FALSE(parse(" 7", 0, 100).ok);
  EXPECT_FALSE(parse("7 ", 0, 100).ok);
  EXPECT_FALSE(parse("1e3", 0, 10000).ok);
}

TEST(CliParseFlag, RejectsOverflowInsteadOfWrapping) {
  EXPECT_FALSE(
      parse("99999999999999999999", 0,
            std::numeric_limits<std::int64_t>::max())
          .ok);
}

TEST(CliParseFlag, FailureLeavesOutputUntouched) {
  std::ostringstream err;
  std::int64_t out = 777;
  EXPECT_FALSE(parse_flag_value("prog", "--n", "junk", 0, 10, out, err));
  EXPECT_EQ(out, 777);
}

TEST(CliParseFlag, DiagnosticNamesProgramFlagRangeAndValue) {
  const ParseResult r = parse("banana", 2, 64);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error,
            "prog: --flag expects an integer in [2, 64], got 'banana'\n");
}

TEST(CliParseFlag, FlagParserBindsProgramName) {
  // The binder is what the argument loops use; same policy, same message.
  const FlagParser flags("sched_cli");
  std::int64_t out = 0;
  EXPECT_TRUE(flags.parse("--procs", "8", 1, 1 << 20, out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(flags.parse("--procs", "none", 1, 1 << 20, out));
}

}  // namespace
}  // namespace catbatch
