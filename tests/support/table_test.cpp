#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/check.hpp"

namespace catbatch {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"Task", "t", "p"});
  t.add_row({"A", "6", "1"});
  t.add_row({"B", "2", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Task"), std::string::npos);
  EXPECT_NE(out.find("A"), std::string::npos);
  EXPECT_NE(out.find("B"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), ContractViolation);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), ContractViolation);
}

TEST(TextTable, NumericColumnsRightAligned) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"y", "10000"});
  const std::string out = t.render();
  // "1" padded to the width of "10000" -> right aligned means spaces before.
  EXPECT_NE(out.find("    1 |"), std::string::npos) << out;
}

TEST(TextTable, SeparatorRowsRender) {
  TextTable t({"c"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // header rule + separator + closing rule + top rule = at least 4 dashes
  // lines; just check both data rows survive.
  EXPECT_NE(out.find("1"), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(TextTable, ColumnsWidenToLargestCell) {
  TextTable t({"h"});
  t.add_row({"wide-cell-content"});
  const std::string out = t.render();
  EXPECT_NE(out.find("wide-cell-content"), std::string::npos);
}

TEST(TextTable, StreamOperatorMatchesRender) {
  TextTable t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.render());
}

}  // namespace
}  // namespace catbatch
