// End-to-end observability: an instrumented simulate() run must tell the
// same story as the SimResult it produced, the scheduler wrapper must not
// change behavior, and the metrics snapshot must merge into the sweep JSON
// report exactly as documented in docs/OBSERVABILITY.md.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "analysis/experiment.hpp"
#include "analysis/json_report.hpp"
#include "instances/examples.hpp"
#include "instances/random_dags.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_export.hpp"
#include "obs/observer.hpp"
#include "obs/summary.hpp"
#include "obs/tracer.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"

namespace catbatch {
namespace {

struct ObservedRun {
  MetricsRegistry metrics;
  EventTracer tracer;
  SimResult result;
  int procs = 0;
};

std::unique_ptr<ObservedRun> observed_demo_run(ScheduleMode mode) {
  auto run = std::make_unique<ObservedRun>();
  run->procs = 4;
  const TaskGraph graph = make_paper_example();
  auto sched = make_scheduler("catbatch");
  EngineObserver observer(&run->tracer, &run->metrics);
  SimOptions options;
  options.mode = mode;
  options.observer = &observer;
  run->result = simulate(graph, *sched, run->procs, options);
  return run;
}

std::uint64_t counter(MetricsRegistry& m, const char* name) {
  return m.counter_value(m.counter(name));
}

double gauge(MetricsRegistry& m, const char* name) {
  return m.gauge_value(m.gauge(name));
}

TEST(ObsIntegration, EngineCountersMatchTheSimResult) {
  auto run = observed_demo_run(ScheduleMode::Counting);
  const std::size_t n = run->result.stats.task_count;
  EXPECT_EQ(counter(run->metrics, "engine.tasks_ready"), n);
  EXPECT_EQ(counter(run->metrics, "engine.tasks_dispatched"), n);
  EXPECT_EQ(counter(run->metrics, "engine.tasks_completed"), n);
  EXPECT_EQ(counter(run->metrics, "engine.select_calls"),
            run->result.stats.decision_points);
  EXPECT_DOUBLE_EQ(gauge(run->metrics, "engine.makespan"),
                   static_cast<double>(run->result.makespan));
  EXPECT_DOUBLE_EQ(gauge(run->metrics, "engine.busy_area"),
                   static_cast<double>(run->result.stats.busy_area));
  // idle_area = procs * makespan - busy_area, by definition.
  EXPECT_DOUBLE_EQ(gauge(run->metrics, "engine.idle_area"),
                   run->procs * static_cast<double>(run->result.makespan) -
                       static_cast<double>(run->result.stats.busy_area));
  // Every acquire was released: nothing in use after the run.
  EXPECT_DOUBLE_EQ(gauge(run->metrics, "engine.procs_in_use"), 0.0);
  EXPECT_LE(gauge(run->metrics, "engine.max_procs_in_use"), run->procs);
  EXPECT_GT(gauge(run->metrics, "engine.max_procs_in_use"), 0.0);
}

TEST(ObsIntegration, IdentityAndCountingModeRecordTheSameStory) {
  auto counting = observed_demo_run(ScheduleMode::Counting);
  auto identity = observed_demo_run(ScheduleMode::Identity);
  EXPECT_EQ(counter(counting->metrics, "engine.tasks_dispatched"),
            counter(identity->metrics, "engine.tasks_dispatched"));
  EXPECT_EQ(counter(counting->metrics, "engine.busy_periods"),
            counter(identity->metrics, "engine.busy_periods"));
  EXPECT_DOUBLE_EQ(gauge(counting->metrics, "engine.makespan"),
                   gauge(identity->metrics, "engine.makespan"));
  EXPECT_EQ(counting->tracer.total_recorded(),
            identity->tracer.total_recorded());
}

TEST(ObsIntegration, TracerEventsAreTimeOrderedAndComplete) {
  auto run = observed_demo_run(ScheduleMode::Counting);
  const EventTracer& t = run->tracer;
  ASSERT_GT(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  std::size_t dispatches = 0, completions = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(t.event(i).at, t.event(i - 1).at);
    }
    if (t.event(i).kind == TraceEventKind::Dispatch) ++dispatches;
    if (t.event(i).kind == TraceEventKind::Completion) ++completions;
  }
  EXPECT_EQ(dispatches, run->result.stats.task_count);
  EXPECT_EQ(completions, run->result.stats.task_count);
}

TEST(ObsIntegration, InstrumentedSchedulerBehavesIdentically) {
  Rng rng(7);
  RandomTaskParams params;
  params.procs.max_procs = 8;
  const TaskGraph graph = random_layered_dag(rng, 120, 10, params);

  auto plain = make_scheduler("catbatch");
  const SimResult bare = simulate(graph, *plain, 8);

  MetricsRegistry metrics;
  auto wrapped = instrument_scheduler(make_scheduler("catbatch"), metrics);
  EXPECT_EQ(wrapped->name(), plain->name());
  const SimResult observed = simulate(graph, *wrapped, 8);

  EXPECT_DOUBLE_EQ(static_cast<double>(observed.makespan),
                   static_cast<double>(bare.makespan));
  EXPECT_EQ(observed.stats.decision_points, bare.stats.decision_points);

  const std::string prefix = "sched." + plain->name() + ".";
  EXPECT_EQ(counter(metrics, (prefix + "select_calls").c_str()),
            bare.stats.decision_points);
  EXPECT_EQ(counter(metrics, (prefix + "picks").c_str()),
            bare.stats.task_count);
  const auto* info = metrics.find(prefix + "select_us");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(metrics.histogram_view(info->id).total,
            bare.stats.decision_points);
}

TEST(ObsIntegration, MetricsMergeIntoTheSweepReport) {
  const InstanceFamily family{"demo", [](Rng&) { return make_paper_example(); }};
  SweepOptions options;
  options.procs = 4;
  options.trials = 2;
  const auto lineup = standard_scheduler_lineup();
  const std::vector<FamilySweep> grid = sweep_grid(
      std::span<const InstanceFamily>(&family, 1), lineup, options);

  MetricsRegistry metrics;
  metrics.add(metrics.counter("bench.runs"), 42);
  metrics.set(metrics.gauge("bench.best_ratio"), 1.5);

  const std::string without =
      sweep_report_json("test", options, grid, 1.0);
  EXPECT_EQ(without.find("\"metrics\""), std::string::npos);

  const std::string with =
      sweep_report_json("test", options, grid, 1.0, &metrics);
  EXPECT_NE(with.find("\"metrics\""), std::string::npos);
  EXPECT_NE(with.find("\"bench.runs\":42"), std::string::npos);
  EXPECT_NE(with.find("\"bench.best_ratio\":1.5"), std::string::npos);
  // The merged report still opens with the original document's fields.
  EXPECT_NE(with.find("\"bench\":\"test\""), std::string::npos);
  EXPECT_NE(with.find("\"families\""), std::string::npos);
}

TEST(ObsIntegration, MetricsJsonCarriesAllThreeSections) {
  auto run = observed_demo_run(ScheduleMode::Counting);
  const std::string json = metrics_json(run->metrics);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.tasks_dispatched\":11"), std::string::npos);
  EXPECT_NE(json.find("\"engine.select_us\""), std::string::npos);
  EXPECT_NE(json.find("\"upper_bounds\""), std::string::npos);
}

TEST(ObsIntegration, SummaryRendersMetricsAndTracerRetention) {
  auto run = observed_demo_run(ScheduleMode::Counting);
  const std::string text = obs_summary(&run->metrics, &run->tracer);
  EXPECT_NE(text.find("engine.tasks_dispatched"), std::string::npos);
  EXPECT_NE(text.find("engine.select_us"), std::string::npos);
  EXPECT_NE(text.find("trace ring"), std::string::npos);
  // Null registry renders a friendly placeholder, not a crash.
  const std::string none = obs_summary(nullptr, nullptr);
  EXPECT_FALSE(none.empty());
}

TEST(ObsIntegration, NullSinkObserverIsInert) {
  const TaskGraph graph = make_paper_example();
  auto sched = make_scheduler("catbatch");
  EngineObserver observer(nullptr, nullptr);
  EXPECT_FALSE(observer.wants_select_timing());
  SimOptions options;
  options.observer = &observer;
  const SimResult r = simulate(graph, *sched, 4, options);
  EXPECT_GT(r.makespan, 0.0);
}

}  // namespace
}  // namespace catbatch
