#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace catbatch {
namespace {

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry r;
  const auto id = r.counter("tasks");
  EXPECT_EQ(r.counter_value(id), 0u);
  r.add(id);
  r.add(id, 41);
  EXPECT_EQ(r.counter_value(id), 42u);
}

TEST(Metrics, GaugeLastValueWinsAndMaxOf) {
  MetricsRegistry r;
  const auto id = r.gauge("load");
  r.set(id, 3.5);
  r.set(id, 1.25);
  EXPECT_DOUBLE_EQ(r.gauge_value(id), 1.25);
  r.max_of(id, 0.5);  // below current value: no change
  EXPECT_DOUBLE_EQ(r.gauge_value(id), 1.25);
  r.max_of(id, 9.0);
  EXPECT_DOUBLE_EQ(r.gauge_value(id), 9.0);
}

TEST(Metrics, HistogramBucketBoundsAreInclusive) {
  MetricsRegistry r;
  const double bounds[] = {0.0, 1.0, 2.0};
  const auto id = r.histogram("picks", bounds);
  r.observe(id, 0.0);  // == first bound -> first bucket
  r.observe(id, 1.0);  // == second bound -> second bucket
  r.observe(id, 1.5);
  r.observe(id, 99.0);  // overflow bucket
  const auto view = r.histogram_view(id);
  ASSERT_EQ(view.counts.size(), 4u);
  EXPECT_EQ(view.counts[0], 1u);
  EXPECT_EQ(view.counts[1], 1u);
  EXPECT_EQ(view.counts[2], 1u);
  EXPECT_EQ(view.counts[3], 1u);
  EXPECT_EQ(view.total, 4u);
  EXPECT_DOUBLE_EQ(view.sum, 101.5);
}

TEST(Metrics, ReRegistrationSameKindReturnsExistingId) {
  MetricsRegistry r;
  const auto a = r.counter("x");
  const auto b = r.counter("x");
  EXPECT_EQ(a, b);
  r.add(a);
  r.add(b);
  EXPECT_EQ(r.counter_value(a), 2u);
  EXPECT_EQ(r.size(), 1u);
}

TEST(Metrics, ReRegistrationDifferentKindThrows) {
  MetricsRegistry r;
  (void)r.counter("x");
  EXPECT_THROW((void)r.gauge("x"), std::exception);
  const double bounds[] = {1.0};
  EXPECT_THROW((void)r.histogram("x", bounds), std::exception);
}

TEST(Metrics, UnsortedHistogramBoundsThrow) {
  MetricsRegistry r;
  const double bounds[] = {2.0, 1.0};
  EXPECT_THROW((void)r.histogram("bad", bounds), std::exception);
}

TEST(Metrics, KNoMetricUpdatesAreNoOps) {
  MetricsRegistry r;
  const auto id = r.counter("real");
  r.add(MetricsRegistry::kNoMetric);
  r.set(MetricsRegistry::kNoMetric, 1.0);
  r.max_of(MetricsRegistry::kNoMetric, 1.0);
  r.observe(MetricsRegistry::kNoMetric, 1.0);
  EXPECT_EQ(r.counter_value(id), 0u);
  EXPECT_EQ(r.size(), 1u);
}

TEST(Metrics, DirectoryListsRegistrationOrderAndFind) {
  MetricsRegistry r;
  (void)r.counter("a");
  (void)r.gauge("b");
  const double bounds[] = {1.0};
  (void)r.histogram("c", bounds);
  ASSERT_EQ(r.metrics().size(), 3u);
  EXPECT_EQ(r.metrics()[0].name, "a");
  EXPECT_EQ(r.metrics()[1].kind, MetricKind::Gauge);
  EXPECT_EQ(r.metrics()[2].kind, MetricKind::Histogram);
  ASSERT_NE(r.find("b"), nullptr);
  EXPECT_EQ(r.find("b")->kind, MetricKind::Gauge);
  EXPECT_EQ(r.find("nope"), nullptr);
  EXPECT_FALSE(r.empty());
}

}  // namespace
}  // namespace catbatch
