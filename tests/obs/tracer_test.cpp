#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace catbatch {
namespace {

TraceEvent dispatch_at(Time at, TaskId id) {
  TraceEvent ev;
  ev.kind = TraceEventKind::Dispatch;
  ev.id = id;
  ev.at = at;
  ev.duration = 1.0;
  ev.procs = 1;
  return ev;
}

TEST(Tracer, StartsEmpty) {
  EventTracer t(8);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.capacity(), 8u);
  EXPECT_EQ(t.total_recorded(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, RecordsInOrderBelowCapacity) {
  EventTracer t(8);
  for (TaskId id = 0; id < 5; ++id) t.record(dispatch_at(id, id));
  ASSERT_EQ(t.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(t.event(i).id, static_cast<TaskId>(i));
  }
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, WraparoundKeepsNewestOldestFirst) {
  EventTracer t(4);
  for (TaskId id = 0; id < 6; ++id) t.record(dispatch_at(id, id));
  // 6 recorded into 4 slots: events 0 and 1 were overwritten; the retained
  // window reads back oldest-first as 2, 3, 4, 5.
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t.total_recorded(), 6u);
  EXPECT_EQ(t.dropped(), 2u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t.event(i).id, static_cast<TaskId>(i + 2));
  }
}

TEST(Tracer, WraparoundManyTimesOver) {
  EventTracer t(3);
  for (TaskId id = 0; id < 100; ++id) t.record(dispatch_at(id, id));
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.total_recorded(), 100u);
  EXPECT_EQ(t.dropped(), 97u);
  EXPECT_EQ(t.event(0).id, 97u);
  EXPECT_EQ(t.event(2).id, 99u);
}

TEST(Tracer, ClearForgetsEventsKeepsCapacity) {
  EventTracer t(4);
  for (TaskId id = 0; id < 6; ++id) t.record(dispatch_at(id, id));
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.total_recorded(), 0u);
  EXPECT_EQ(t.capacity(), 4u);
  t.record(dispatch_at(0.0, 7));
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.event(0).id, 7u);
}

TEST(Tracer, EveryKindHasAStableName) {
  for (const TraceEventKind kind :
       {TraceEventKind::TaskReveal, TraceEventKind::TaskReady,
        TraceEventKind::BatchOpen, TraceEventKind::BatchClose,
        TraceEventKind::Select, TraceEventKind::Dispatch,
        TraceEventKind::Completion, TraceEventKind::ProcAcquire,
        TraceEventKind::ProcRelease}) {
    const char* name = trace_event_kind_name(kind);
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::strlen(name), 0u);
  }
}

}  // namespace
}  // namespace catbatch
