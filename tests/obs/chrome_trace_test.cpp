// Parse-back validation of the Chrome trace_event exporter: the document
// must be syntactically valid JSON (checked with a minimal recursive-descent
// parser, no external dependency) and structurally what chrome://tracing
// expects — a traceEvents array of objects with ph/pid/ts fields, balanced
// B/E spans, and honest otherData truncation counters.
#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>

#include "instances/examples.hpp"
#include "obs/observer.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sim/engine.hpp"

namespace catbatch {
namespace {

// ---- minimal JSON validator ------------------------------------------------

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++pos_;
            if (pos_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

// Traces the paper's 11-task example under CatBatch and exports it.
std::string traced_demo_json(EventTracer& tracer, const TaskGraph& graph) {
  CatBatchScheduler sched;
  EngineObserver observer(&tracer, nullptr);
  SimOptions options;
  options.mode = ScheduleMode::Counting;  // lanes need no identities
  options.observer = &observer;
  const SimResult r = simulate(graph, sched, 4, options);
  EXPECT_GT(r.makespan, 0.0);
  ChromeTraceOptions trace_options;
  trace_options.graph = &graph;
  return chrome_trace_json(tracer, trace_options);
}

TEST(ChromeTrace, DocumentIsValidJson) {
  EventTracer tracer;
  const TaskGraph graph = make_paper_example();
  const std::string json = traced_demo_json(tracer, graph);
  EXPECT_TRUE(JsonValidator(json).valid()) << json.substr(0, 400);
}

TEST(ChromeTrace, HasExpectedStructure) {
  EventTracer tracer;
  const TaskGraph graph = make_paper_example();
  const std::string json = traced_demo_json(tracer, graph);

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(json.find("\"events_recorded\""), std::string::npos);
  EXPECT_NE(json.find("\"events_dropped\":0"), std::string::npos);

  // One "X" slice per task (11 in the paper example), named after the task.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), graph.size());
  // Busy-period spans are balanced.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));
  // The counter track exists.
  EXPECT_NE(json.find("\"procs_in_use\""), std::string::npos);
}

TEST(ChromeTrace, SliceNamesComeFromTheGraph) {
  EventTracer tracer;
  const TaskGraph graph = make_paper_example();
  const std::string json = traced_demo_json(tracer, graph);
  // Every task name appears as a slice label.
  for (TaskId id = 0; id < graph.size(); ++id) {
    const std::string& name = graph.task(id).name;
    if (name.empty()) continue;
    EXPECT_NE(json.find("\"name\":\"" + name + "\""), std::string::npos)
        << "missing slice for task " << name;
  }
}

TEST(ChromeTrace, WithoutGraphFallsBackToTaskIds) {
  EventTracer tracer;
  TraceEvent ev;
  ev.kind = TraceEventKind::Dispatch;
  ev.id = 3;
  ev.at = 0.0;
  ev.duration = 2.0;
  ev.procs = 1;
  tracer.record(ev);
  const std::string json = chrome_trace_json(tracer);
  EXPECT_TRUE(JsonValidator(json).valid());
  EXPECT_NE(json.find("task 3"), std::string::npos);
}

TEST(ChromeTrace, EmptyTracerStillProducesValidDocument) {
  EventTracer tracer;
  const std::string json = chrome_trace_json(tracer);
  EXPECT_TRUE(JsonValidator(json).valid());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeTrace, WraparoundTruncationIsReported) {
  EventTracer tracer(8);  // far smaller than the demo's event count
  const TaskGraph graph = make_paper_example();
  const std::string json = traced_demo_json(tracer, graph);
  EXPECT_TRUE(JsonValidator(json).valid());
  // Dropped events are visible in otherData, and orphaned "E" closes from
  // the truncated window never precede their "B".
  EXPECT_EQ(json.find("\"events_dropped\":0"), std::string::npos);
  EXPECT_GE(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));
}

TEST(ChromeTrace, SimulatedTimeIsScaledToMicroseconds) {
  EventTracer tracer;
  TraceEvent ev;
  ev.kind = TraceEventKind::Dispatch;
  ev.id = 0;
  ev.at = 2.0;
  ev.duration = 3.0;
  ev.procs = 1;
  tracer.record(ev);
  ChromeTraceOptions options;
  options.us_per_time_unit = 10.0;
  const std::string json = chrome_trace_json(tracer, options);
  EXPECT_TRUE(JsonValidator(json).valid());
  EXPECT_NE(json.find("\"ts\":20"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":30"), std::string::npos);
}

}  // namespace
}  // namespace catbatch
