// Protocol layer: the spec table, validation helpers, and reply builders.
// The builders must produce lines the strict parser accepts, and doubles
// must survive the writer/parser round trip bit for bit — that property is
// what lets the equivalence suite assert bit-identity over the wire.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "sched/registry.hpp"
#include "service/protocol.hpp"
#include "support/json_parse.hpp"

namespace catbatch {
namespace {

JsonValue parsed(const std::string& line) {
  const auto value = parse_json(line);
  EXPECT_TRUE(value.has_value()) << line;
  EXPECT_TRUE(value.has_value() && value->is_object()) << line;
  return value.value_or(JsonValue{});
}

TEST(Protocol, SpecTextCoversEveryShapeAndCode) {
  const std::string spec = protocol_spec_text();
  EXPECT_NE(spec.find("version 1\n"), std::string::npos);
  for (const RequestShape& shape : request_shapes()) {
    EXPECT_NE(spec.find("request " + std::string(shape.type)),
              std::string::npos)
        << shape.type;
    EXPECT_NE(spec.find("-> " + std::string(shape.reply)), std::string::npos)
        << shape.type;
  }
  for (const std::string_view code : error_codes()) {
    EXPECT_NE(spec.find(code), std::string::npos) << code;
  }
}

TEST(Protocol, RequestShapeLookup) {
  ASSERT_NE(find_request_shape("hello"), nullptr);
  EXPECT_EQ(find_request_shape("hello")->reply, "welcome");
  ASSERT_NE(find_request_shape("submit"), nullptr);
  EXPECT_EQ(find_request_shape("submit")->reply, "decisions");
  ASSERT_NE(find_request_shape("capacity"), nullptr);
  EXPECT_EQ(find_request_shape("capacity")->reply, "decisions");
  ASSERT_NE(find_request_shape("kill"), nullptr);
  EXPECT_EQ(find_request_shape("kill")->reply, "decisions");
  EXPECT_EQ(find_request_shape("no-such-type"), nullptr);
  EXPECT_EQ(find_request_shape(""), nullptr);

  std::set<std::string_view> types;
  for (const RequestShape& shape : request_shapes()) {
    EXPECT_TRUE(types.insert(shape.type).second)
        << "duplicate shape " << shape.type;
  }
  EXPECT_EQ(types.size(), 12u);
}

TEST(Protocol, ErrorCodesAreDistinct) {
  std::set<std::string_view> codes(error_codes().begin(),
                                   error_codes().end());
  EXPECT_EQ(codes.size(), error_codes().size());
  EXPECT_TRUE(codes.contains(errc::kBadJson));
  EXPECT_TRUE(codes.contains(errc::kContract));
}

TEST(Protocol, FirstUnknownFieldHonorsOptionalMarkers) {
  const RequestShape* open = find_request_shape("open");
  ASSERT_NE(open, nullptr);
  // All declared fields — required and optional — are accepted.
  const JsonValue ok = parsed(
      R"({"type":"open","session":"s","algo":"a","procs":1,)"
      R"("mode":"identity","clock":"external"})");
  EXPECT_EQ(first_unknown_field(ok, *open), "");
  const JsonValue bad = parsed(
      R"({"type":"open","session":"s","bogus":1})");
  EXPECT_EQ(first_unknown_field(bad, *open), "bogus");
}

TEST(Protocol, WelcomeAdvertisesEveryAlgorithm) {
  const JsonValue welcome = parsed(welcome_line());
  ASSERT_NE(welcome.find("type"), nullptr);
  EXPECT_EQ(welcome.find("type")->str_v, "welcome");
  ASSERT_NE(welcome.find("version"), nullptr);
  EXPECT_EQ(welcome.find("version")->num_v, kProtocolVersion);
  const JsonValue* algos = welcome.find("algos");
  ASSERT_NE(algos, nullptr);
  ASSERT_TRUE(algos->is_array());
  const std::vector<std::string> names = scheduler_names();
  ASSERT_EQ(algos->items.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(algos->items[i].str_v, names[i]);
  }
}

TEST(Protocol, ErrorLineCarriesCodeAndOptionalSession) {
  const JsonValue with = parsed(error_line(errc::kBadMessage, "why", "s1"));
  EXPECT_EQ(with.find("type")->str_v, "error");
  EXPECT_EQ(with.find("code")->str_v, "bad-message");
  EXPECT_EQ(with.find("message")->str_v, "why");
  ASSERT_NE(with.find("session"), nullptr);
  EXPECT_EQ(with.find("session")->str_v, "s1");

  const JsonValue without = parsed(error_line(errc::kBadJson, "why"));
  EXPECT_EQ(without.find("session"), nullptr);
}

TEST(Protocol, DecisionsLineRoundTripsDoublesBitExactly) {
  // Awkward values: a golden-corpus makespan, a repeating fraction, a
  // denormal-adjacent tiny, and a value with a long shortest form.
  const std::vector<Decision> decisions = {
      {0, 0x1.5e8e904p+6, 3},
      {1, 1.0 / 3.0, 1},
      {2, 1e-17, 8},
      {3, 0.1 + 0.2, 2},
  };
  const JsonValue reply =
      parsed(decisions_line("s", 0x1.921fb54442d18p+1, decisions, false));
  EXPECT_EQ(reply.find("type")->str_v, "decisions");
  EXPECT_EQ(std::bit_cast<std::uint64_t>(reply.find("now")->num_v),
            std::bit_cast<std::uint64_t>(0x1.921fb54442d18p+1));
  EXPECT_FALSE(reply.find("complete")->bool_v);
  const JsonValue* list = reply.find("decisions");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->items.size(), decisions.size());
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const JsonValue& d = list->items[i];
    EXPECT_EQ(d.find("task")->num_v, decisions[i].id);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(d.find("at")->num_v),
              std::bit_cast<std::uint64_t>(decisions[i].at))
        << i;
    EXPECT_EQ(d.find("procs")->num_v, decisions[i].procs);
  }
}

TEST(Protocol, StatsAndClosedLinesParseBack) {
  SessionStats stats;
  stats.now = 4.5;
  stats.submitted = 10;
  stats.completed = 7;
  stats.decisions = 9;
  stats.makespan = 4.25;
  const JsonValue s = parsed(stats_line("sess", "catbatch", stats));
  EXPECT_EQ(s.find("type")->str_v, "stats");
  EXPECT_EQ(s.find("algo")->str_v, "catbatch");
  EXPECT_EQ(s.find("submitted")->num_v, 10.0);
  EXPECT_EQ(s.find("completed")->num_v, 7.0);
  EXPECT_EQ(s.find("decisions")->num_v, 9.0);
  EXPECT_EQ(s.find("makespan")->num_v, 4.25);

  SimResult result;
  result.makespan = 8.75;
  result.stats.task_count = 3;
  result.stats.decision_points = 2;
  result.stats.events = 5;
  result.stats.busy_area = 12.5;
  const JsonValue c = parsed(closed_line("sess", result));
  EXPECT_EQ(c.find("type")->str_v, "closed");
  EXPECT_EQ(c.find("makespan")->num_v, 8.75);
  EXPECT_EQ(c.find("tasks")->num_v, 3.0);
  EXPECT_EQ(c.find("decision_points")->num_v, 2.0);
  EXPECT_EQ(c.find("events")->num_v, 5.0);
  EXPECT_EQ(c.find("busy_area")->num_v, 12.5);

  const JsonValue g = parsed(goodbye_line());
  EXPECT_EQ(g.find("type")->str_v, "goodbye");
}

}  // namespace
}  // namespace catbatch
