// Transport loops: serve_stdio over string streams and serve_unix over a
// real AF_UNIX socket with concurrent clients. The unix test doubles as
// the TSan target (registered as catbatch_tsan_service): many connections'
// strands exercise the hub's locking discipline under a real reactor.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/hub.hpp"
#include "service/loadgen.hpp"
#include "support/rng.hpp"

namespace catbatch {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(Daemon, StdioServesLockstepConversation) {
  std::istringstream in(
      "{\"type\":\"hello\",\"version\":1}\n"
      "{\"type\":\"open\",\"session\":\"s\",\"algo\":\"list-fifo\","
      "\"procs\":2}\n"
      "{\"type\":\"submit\",\"session\":\"s\",\"tasks\":"
      "[{\"work\":1.0,\"procs\":1}]}\n"
      "{\"type\":\"drain\",\"session\":\"s\"}\n"
      "{\"type\":\"close\",\"session\":\"s\"}\n"
      "{\"type\":\"shutdown\"}\n"
      "{\"type\":\"query\",\"session\":\"s\"}\n");  // after shutdown: unread
  std::ostringstream out;
  ServiceHub hub;
  serve_stdio(hub, in, out);

  const std::vector<std::string> replies = lines_of(out.str());
  ASSERT_EQ(replies.size(), 6u);  // lockstep; the post-shutdown line unread
  EXPECT_NE(replies[0].find("\"type\":\"welcome\""), std::string::npos);
  EXPECT_NE(replies[1].find("\"type\":\"opened\""), std::string::npos);
  EXPECT_NE(replies[2].find("\"type\":\"decisions\""), std::string::npos);
  EXPECT_NE(replies[3].find("\"type\":\"decisions\""), std::string::npos);
  EXPECT_NE(replies[4].find("\"type\":\"closed\""), std::string::npos);
  EXPECT_NE(replies[5].find("\"type\":\"goodbye\""), std::string::npos);
  EXPECT_TRUE(hub.shutdown_requested());
  EXPECT_EQ(hub.connection_count(), 0u);  // its connection was torn down
}

TEST(Daemon, StdioStopsAtEofWithoutShutdown) {
  std::istringstream in("{\"type\":\"hello\",\"version\":1}\n");
  std::ostringstream out;
  ServiceHub hub;
  serve_stdio(hub, in, out);
  ASSERT_EQ(lines_of(out.str()).size(), 1u);
  EXPECT_FALSE(hub.shutdown_requested());
  EXPECT_EQ(hub.connection_count(), 0u);
}

TEST(Daemon, StdioRejectsOverlongLines) {
  std::string giant(kMaxLineBytes + 1, 'x');
  giant += '\n';
  giant += "{\"type\":\"hello\",\"version\":1}\n";
  std::istringstream in(giant);
  std::ostringstream out;
  ServiceHub hub;
  serve_stdio(hub, in, out);
  const std::vector<std::string> replies = lines_of(out.str());
  ASSERT_GE(replies.size(), 1u);
  EXPECT_NE(replies[0].find("bad-message"), std::string::npos);
}

std::string test_socket_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("catbatchd-test-" + std::string(tag) + "-" +
           std::to_string(::getpid()) + ".sock"))
      .string();
}

/// Connects with retries while the daemon thread is still binding.
std::unique_ptr<SocketClient> connect_with_retry(const std::string& path) {
  for (int attempt = 0; attempt < 500; ++attempt) {
    try {
      return std::make_unique<SocketClient>(path);
    } catch (const std::system_error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  throw std::runtime_error("daemon never came up on " + path);
}

TEST(Daemon, UnixSocketServesConcurrentSessions) {
  const std::string path = test_socket_path("conc");
  ServiceHub hub;
  DaemonOptions options;
  options.socket_path = path;
  options.jobs = 4;
  std::thread daemon([&] { serve_unix(hub, options); });

  // 4 client threads x 4 sessions each, mixed clocks, over loopback.
  constexpr int kThreads = 4;
  std::vector<std::thread> clients;
  std::vector<double> makespans(
      static_cast<std::size_t>(kThreads) * 4, -1.0);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      const auto client = connect_with_retry(path);
      protocol_handshake(*client);
      for (int s = 0; s < 4; ++s) {
        Rng rng(std::uint64_t(17 + t * 4 + s));
        TaskGraph graph;
        for (int i = 0; i < 24; ++i) {
          const TaskId id =
              graph.add_task(rng.uniform_real(0.5, 4.0),
                             static_cast<int>(rng.uniform_int(1, 4)));
          if (id > 0 && rng.bernoulli(0.4)) {
            graph.add_edge(static_cast<TaskId>(rng.index(id)), id);
          }
        }
        const bool external = (t + s) % 2 == 0;
        const ReplayResult result = replay_session(
            *client, "t" + std::to_string(t) + "s" + std::to_string(s),
            "catbatch", 4, graph, "counting",
            external ? "external" : "simulated");
        makespans[static_cast<std::size_t>(t * 4 + s)] = result.makespan;
        EXPECT_EQ(result.decisions.size(), graph.size());
      }
    });
  }
  for (std::thread& c : clients) c.join();
  for (const double m : makespans) EXPECT_GT(m, 0.0);

  // Same graphs replayed in-process must agree: the socket transport adds
  // nothing to the decision path.
  ServiceHub local;
  HubClient local_client(local);
  protocol_handshake(local_client);
  for (int t = 0; t < kThreads; ++t) {
    for (int s = 0; s < 4; ++s) {
      Rng rng(std::uint64_t(17 + t * 4 + s));
      TaskGraph graph;
      for (int i = 0; i < 24; ++i) {
        const TaskId id =
            graph.add_task(rng.uniform_real(0.5, 4.0),
                           static_cast<int>(rng.uniform_int(1, 4)));
        if (id > 0 && rng.bernoulli(0.4)) {
          graph.add_edge(static_cast<TaskId>(rng.index(id)), id);
        }
      }
      const ReplayResult result = replay_session(
          local_client, "l" + std::to_string(t * 4 + s), "catbatch", 4,
          graph, "counting", "simulated");
      EXPECT_EQ(result.makespan,
                makespans[static_cast<std::size_t>(t * 4 + s)]);
    }
  }

  {
    const auto stopper = connect_with_retry(path);
    protocol_handshake(*stopper);
    const std::string goodbye = stopper->request("{\"type\":\"shutdown\"}");
    EXPECT_NE(goodbye.find("\"type\":\"goodbye\""), std::string::npos);
  }
  daemon.join();
  EXPECT_FALSE(std::filesystem::exists(path));  // socket file removed
  EXPECT_EQ(hub.connection_count(), 0u);
}

TEST(Daemon, UnixSocketSurvivesAbruptDisconnect) {
  const std::string path = test_socket_path("drop");
  ServiceHub hub;
  DaemonOptions options;
  options.socket_path = path;
  options.jobs = 2;
  std::thread daemon([&] { serve_unix(hub, options); });
  {
    // Open a session, then vanish without closing anything.
    const auto client = connect_with_retry(path);
    protocol_handshake(*client);
    client->request(
        "{\"type\":\"open\",\"session\":\"s\",\"algo\":\"catbatch\","
        "\"procs\":4}");
  }
  {
    // The server must still serve fresh connections normally.
    const auto client = connect_with_retry(path);
    protocol_handshake(*client);
    Rng rng(3);
    TaskGraph graph;
    for (int i = 0; i < 8; ++i) {
      graph.add_task(rng.uniform_real(1.0, 2.0),
                     static_cast<int>(rng.uniform_int(1, 2)));
    }
    const ReplayResult result =
        replay_session(*client, "fresh", "list-fifo", 2, graph);
    EXPECT_GT(result.makespan, 0.0);
    const std::string goodbye = client->request("{\"type\":\"shutdown\"}");
    EXPECT_NE(goodbye.find("goodbye"), std::string::npos);
  }
  daemon.join();
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace catbatch
