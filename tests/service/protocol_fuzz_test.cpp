// In-suite smoke of the protocol fuzzer: a short deterministic run must
// complete clean. The deep battery lives behind `catbatch_fuzz --protocol`.
#include <gtest/gtest.h>

#include "qa/protocol_fuzz.hpp"

namespace catbatch {
namespace {

TEST(ProtocolFuzz, ShortBatteryIsClean) {
  ProtocolFuzzOptions options;
  options.seed = 20260808;
  options.iterations = 60;
  const ProtocolFuzzReport report = run_protocol_fuzz(options);
  EXPECT_EQ(report.iterations_run, 60u);
  EXPECT_GT(report.lines_sent, 60u);
  EXPECT_GT(report.error_replies, 0u);  // adversarial traffic does err
  EXPECT_TRUE(report.clean()) << report.findings.front();
}

TEST(ProtocolFuzz, DeterministicInTheSeed) {
  ProtocolFuzzOptions options;
  options.seed = 99;
  options.iterations = 10;
  const ProtocolFuzzReport a = run_protocol_fuzz(options);
  const ProtocolFuzzReport b = run_protocol_fuzz(options);
  EXPECT_EQ(a.lines_sent, b.lines_sent);
  EXPECT_EQ(a.error_replies, b.error_replies);
  EXPECT_EQ(a.findings, b.findings);
}

}  // namespace
}  // namespace catbatch
