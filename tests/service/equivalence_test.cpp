// Session-vs-batch equivalence: the golden corpus (standard_families
// (120, 8), seeds 7 and 8, P = 8, every registry algorithm) replayed
// through the wire protocol must be bit-identical to simulate().
//
// GoldenSchedules already pins simulate() to the recorded makespan table,
// so proving protocol == simulate() here transitively pins the protocol
// path to the goldens. Three-way check per corpus row:
//   1. reference     — simulate(graph, scheduler, 8), identity mode;
//   2. simulated replay — the graph through a protocol session
//      (clock=simulated): per-decision (start, procs) against the
//      reference Schedule, makespan bit-equal through JSON;
//   3. external replay — the same session under clock=external, the
//      client replaying completions: the decision stream and makespan
//      must match the simulated replay exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "sched/registry.hpp"
#include "service/client.hpp"
#include "service/hub.hpp"
#include "service/loadgen.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"

namespace catbatch {
namespace {

constexpr int kProcs = 8;
constexpr std::uint64_t kSeeds[] = {7, 8};

TEST(ServiceEquivalence, ProtocolReplayMatchesSimulateBitExactly) {
  const auto families = standard_families(120, 8);
  ServiceHub hub;
  HubClient client(hub);
  protocol_handshake(client);

  std::size_t rows = 0;
  for (const InstanceFamily& family : families) {
    for (const std::uint64_t seed : kSeeds) {
      Rng rng(seed);
      const TaskGraph graph = family.make(rng);
      const bool independent = family.label == "independent";
      for (const SchedulerEntry& entry : scheduler_registry()) {
        if (entry.independent_only && !independent) continue;
        const std::string tag = family.label + "/" +
                                std::to_string(seed) + "/" + entry.name;

        auto ref_sched = make_scheduler(entry.name, graph);
        ASSERT_NE(ref_sched, nullptr) << tag;
        const SimResult ref = simulate(graph, *ref_sched, kProcs);

        const std::string id = "eq-" + std::to_string(rows);
        const ReplayResult sim_replay =
            replay_session(client, id + "-s", entry.name, kProcs, graph,
                           "identity", "simulated");
        EXPECT_EQ(sim_replay.makespan, ref.makespan) << tag;
        ASSERT_EQ(sim_replay.decisions.size(), graph.size()) << tag;
        for (const Decision& d : sim_replay.decisions) {
          const ScheduledTask& entry_ref = ref.schedule.entry_for(d.id);
          EXPECT_EQ(d.at, entry_ref.start) << tag << " task " << d.id;
          EXPECT_EQ(d.procs, entry_ref.procs()) << tag << " task " << d.id;
        }
        EXPECT_EQ(sim_replay.decision_points, ref.stats.decision_points)
            << tag;
        EXPECT_EQ(sim_replay.events, ref.stats.events) << tag;

        const ReplayResult ext_replay =
            replay_session(client, id + "-e", entry.name, kProcs, graph,
                           "identity", "external");
        EXPECT_EQ(ext_replay.makespan, ref.makespan) << tag;
        ASSERT_EQ(ext_replay.decisions.size(), sim_replay.decisions.size())
            << tag;
        for (std::size_t i = 0; i < sim_replay.decisions.size(); ++i) {
          EXPECT_EQ(ext_replay.decisions[i].id, sim_replay.decisions[i].id)
              << tag;
          EXPECT_EQ(ext_replay.decisions[i].at, sim_replay.decisions[i].at)
              << tag;
          EXPECT_EQ(ext_replay.decisions[i].procs,
                    sim_replay.decisions[i].procs)
              << tag;
        }
        ++rows;
      }
    }
  }
  // The corpus shape: 7 families x 2 seeds x 16 general algorithms
  // (GoldenSchedules pins the 13 pre-backfill-lineup ones), plus the two
  // shelf packers on independent x 2.
  EXPECT_EQ(rows, 228u);
}

TEST(ServiceEquivalence, CountingModeReplayMatchesIdentityMakespans) {
  // Counting mode must not perturb a single decision over the wire either;
  // one family suffices (GoldenSchedules covers counting==identity for
  // simulate(), and the test above covers the protocol path).
  const InstanceFamily family = standard_family("layered", 120, 8);
  ServiceHub hub;
  HubClient client(hub);
  protocol_handshake(client);
  Rng rng(7);
  const TaskGraph graph = family.make(rng);
  for (const char* algo : {"catbatch", "easy-backfill", "divide-conquer"}) {
    auto ref_sched = make_scheduler(algo, graph);
    const SimResult ref = simulate(graph, *ref_sched, kProcs);
    const ReplayResult counting = replay_session(
        client, std::string("cnt-") + algo, algo, kProcs, graph,
        "counting", "simulated");
    EXPECT_EQ(counting.makespan, ref.makespan) << algo;
    ASSERT_EQ(counting.decisions.size(), graph.size()) << algo;
    for (const Decision& d : counting.decisions) {
      EXPECT_EQ(d.at, ref.schedule.entry_for(d.id).start) << algo;
    }
  }
}

}  // namespace
}  // namespace catbatch
