// End-to-end protocol semantics through the real serving path
// (HubClient -> ServiceHub::handle_line -> ServiceSession), covering the
// lifecycle rules and the error-envelope discipline: which mistakes are
// recoverable protocol errors and which poison a session.
#include <gtest/gtest.h>

#include <string>

#include "service/client.hpp"
#include "service/hub.hpp"
#include "service/protocol.hpp"
#include "support/json_parse.hpp"

namespace catbatch {
namespace {

/// Sends one line and returns the parsed reply object.
JsonValue ask(LineClient& client, const std::string& line) {
  const std::string reply = client.request(line);
  const auto value = parse_json(reply);
  EXPECT_TRUE(value.has_value() && value->is_object()) << reply;
  return value.value_or(JsonValue{});
}

std::string type_of(const JsonValue& reply) {
  const JsonValue* type = reply.find("type");
  return type != nullptr ? type->str_v : "<none>";
}

std::string code_of(const JsonValue& reply) {
  const JsonValue* code = reply.find("code");
  return code != nullptr ? code->str_v : "<none>";
}

void hello(LineClient& client) {
  EXPECT_EQ(type_of(ask(client, R"({"type":"hello","version":1})")),
            "welcome");
}

TEST(ServiceSessionProtocol, HelloMustComeFirst) {
  ServiceHub hub;
  HubClient client(hub);
  const JsonValue early = ask(client, R"({"type":"query","session":"s"})");
  EXPECT_EQ(type_of(early), "error");
  EXPECT_EQ(code_of(early), "bad-sequence");

  hello(client);
  const JsonValue again = ask(client, R"({"type":"hello","version":1})");
  EXPECT_EQ(code_of(again), "bad-sequence");  // duplicate hello
}

TEST(ServiceSessionProtocol, VersionNegotiation) {
  ServiceHub hub;
  HubClient client(hub);
  const JsonValue wrong = ask(client, R"({"type":"hello","version":2})");
  EXPECT_EQ(code_of(wrong), "unsupported-version");
  const JsonValue missing = ask(client, R"({"type":"hello"})");
  EXPECT_EQ(code_of(missing), "bad-message");
  const JsonValue fractional =
      ask(client, R"({"type":"hello","version":1.5})");
  EXPECT_EQ(code_of(fractional), "bad-message");
  // The connection is still fresh: a correct hello now succeeds.
  hello(client);
}

TEST(ServiceSessionProtocol, MalformedTrafficIsRejectedPerLine) {
  ServiceHub hub;
  HubClient client(hub);
  hello(client);
  EXPECT_EQ(code_of(ask(client, "{not json")), "bad-json");
  EXPECT_EQ(code_of(ask(client, "[1,2,3]")), "bad-message");  // not an object
  EXPECT_EQ(code_of(ask(client, R"({"type":"frobnicate"})")), "bad-message");
  EXPECT_EQ(code_of(ask(client, R"({"type":"shutdown","extra":1})")),
            "bad-message");  // unknown field
  EXPECT_EQ(code_of(ask(client, R"({"type":"open","session":"s",)"
                                R"("algo":"catbatch","procs":1e999})")),
            "bad-json");  // overflowing number rejected at parse
}

TEST(ServiceSessionProtocol, OpenValidation) {
  ServiceHub hub;
  HubClient client(hub);
  hello(client);
  EXPECT_EQ(code_of(ask(client, R"({"type":"open","session":"s",)"
                                R"("algo":"no-such","procs":4})")),
            "unknown-algo");
  EXPECT_EQ(code_of(ask(client, R"({"type":"open","session":"s",)"
                                R"("algo":"catbatch","procs":0})")),
            "bad-message");
  EXPECT_EQ(code_of(ask(client, R"({"type":"open","session":"",)"
                                R"("algo":"catbatch","procs":4})")),
            "bad-message");
  EXPECT_EQ(code_of(ask(client, R"({"type":"open","session":"s",)"
                                R"("algo":"catbatch","procs":4,)"
                                R"("clock":"lunar"})")),
            "bad-message");
  EXPECT_EQ(type_of(ask(client, R"({"type":"open","session":"s",)"
                                R"({"algo":"x"})")),
            "error");  // malformed JSON still answers exactly one line

  const JsonValue opened = ask(client, R"({"type":"open","session":"s",)"
                                       R"("algo":"catbatch","procs":4})");
  EXPECT_EQ(type_of(opened), "opened");
  EXPECT_EQ(code_of(ask(client, R"({"type":"open","session":"s",)"
                                R"("algo":"list-fifo","procs":4})")),
            "duplicate-session");
  // Operations on sessions that were never opened:
  EXPECT_EQ(code_of(ask(client, R"({"type":"step","session":"t"})")),
            "unknown-session");
}

TEST(ServiceSessionProtocol, CloseThenReopenReusesTheName) {
  ServiceHub hub;
  HubClient client(hub);
  hello(client);
  ask(client, R"({"type":"open","session":"s","algo":"list-fifo",)"
              R"("procs":2})");
  const JsonValue closed = ask(client, R"({"type":"close","session":"s"})");
  EXPECT_EQ(type_of(closed), "closed");
  EXPECT_EQ(closed.find("makespan")->num_v, 0.0);  // nothing ever submitted
  EXPECT_EQ(type_of(ask(client, R"({"type":"open","session":"s",)"
                                R"("algo":"catbatch","procs":4})")),
            "opened");
}

TEST(ServiceSessionProtocol, SubmitValidationLeavesSessionUsable) {
  ServiceHub hub;
  HubClient client(hub);
  hello(client);
  ask(client, R"({"type":"open","session":"s","algo":"list-fifo",)"
              R"("procs":4})");
  const auto rejected = [&](const std::string& tasks) {
    const JsonValue reply = ask(
        client, R"({"type":"submit","session":"s","tasks":)" + tasks + "}");
    EXPECT_EQ(type_of(reply), "error") << tasks;
    return code_of(reply);
  };
  EXPECT_EQ(rejected("[{}]"), "bad-message");               // missing work
  EXPECT_EQ(rejected("[{\"work\":-1}]"), "bad-message");    // negative work
  EXPECT_EQ(rejected("[{\"work\":1,\"procs\":9}]"),         // > platform
            "bad-message");
  EXPECT_EQ(rejected("[{\"work\":1,\"procs\":0}]"), "bad-message");
  EXPECT_EQ(rejected("[{\"work\":1,\"preds\":[5]}]"),       // dangling pred
            "bad-message");
  EXPECT_EQ(rejected("[{\"work\":1,\"preds\":[0]}]"),       // self edge
            "bad-message");
  EXPECT_EQ(rejected("[{\"work\":1,\"color\":\"red\"}]"),   // unknown field
            "bad-message");
  EXPECT_EQ(rejected("[{\"work\":1,\"release\":-2}]"), "bad-message");
  EXPECT_EQ(rejected("[3]"), "bad-message");                // not an object

  // None of those rejections touched the engine: a clean batch still runs.
  const JsonValue ok = ask(
      client,
      R"({"type":"submit","session":"s","tasks":)"
      R"([{"work":2.0,"procs":2},{"work":1.0,"procs":4,"preds":[0]}]})");
  ASSERT_EQ(type_of(ok), "decisions");
  EXPECT_EQ(ok.find("decisions")->items.size(), 1u);  // root dispatched
  const JsonValue drained = ask(client, R"({"type":"drain","session":"s"})");
  ASSERT_EQ(type_of(drained), "decisions");
  EXPECT_TRUE(drained.find("complete")->bool_v);
  const JsonValue closed = ask(client, R"({"type":"close","session":"s"})");
  EXPECT_EQ(closed.find("makespan")->num_v, 3.0);
  EXPECT_EQ(closed.find("tasks")->num_v, 2.0);
}

TEST(ServiceSessionProtocol, ClockVerbsMatchTheSessionClock) {
  ServiceHub hub;
  HubClient client(hub);
  hello(client);
  ask(client, R"({"type":"open","session":"sim","algo":"list-fifo",)"
              R"("procs":2})");
  ask(client, R"({"type":"open","session":"ext","algo":"list-fifo",)"
              R"("procs":2,"clock":"external"})");
  EXPECT_EQ(code_of(ask(client, R"({"type":"complete","session":"sim",)"
                                R"("task":0,"at":1.0})")),
            "bad-sequence");
  EXPECT_EQ(code_of(ask(client, R"({"type":"tick","session":"sim",)"
                                R"("at":1.0})")),
            "bad-sequence");
  EXPECT_EQ(code_of(ask(client, R"({"type":"step","session":"ext"})")),
            "bad-sequence");
  EXPECT_EQ(code_of(ask(client, R"({"type":"drain","session":"ext"})")),
            "bad-sequence");
}

TEST(ServiceSessionProtocol, ExternalClockFlow) {
  ServiceHub hub;
  HubClient client(hub);
  hello(client);
  ask(client, R"({"type":"open","session":"e","algo":"list-fifo",)"
              R"("procs":2,"clock":"external"})");
  const JsonValue d0 = ask(
      client,
      R"({"type":"submit","session":"e","tasks":)"
      R"([{"work":2.0,"procs":1},{"work":1.0,"procs":2,"preds":[0]}]})");
  ASSERT_EQ(type_of(d0), "decisions");
  ASSERT_EQ(d0.find("decisions")->items.size(), 1u);
  EXPECT_FALSE(d0.find("complete")->bool_v);

  // Recoverable sequence errors first: they must not poison anything.
  EXPECT_EQ(code_of(ask(client, R"({"type":"complete","session":"e",)"
                                R"("task":7,"at":1.0})")),
            "bad-sequence");  // never submitted
  EXPECT_EQ(code_of(ask(client, R"({"type":"complete","session":"e",)"
                                R"("task":0,"at":-1.0})")),
            "bad-sequence");  // clock backwards

  const JsonValue d1 = ask(client, R"({"type":"complete","session":"e",)"
                                   R"("task":0,"at":2.0})");
  ASSERT_EQ(type_of(d1), "decisions");
  ASSERT_EQ(d1.find("decisions")->items.size(), 1u);
  EXPECT_EQ(d1.find("decisions")->items[0].find("task")->num_v, 1.0);
  EXPECT_EQ(d1.find("decisions")->items[0].find("at")->num_v, 2.0);

  const JsonValue stats = ask(client, R"({"type":"query","session":"e"})");
  ASSERT_EQ(type_of(stats), "stats");
  EXPECT_EQ(stats.find("submitted")->num_v, 2.0);
  EXPECT_EQ(stats.find("completed")->num_v, 1.0);
  EXPECT_EQ(stats.find("decisions")->num_v, 2.0);

  const JsonValue d2 = ask(client, R"({"type":"complete","session":"e",)"
                                   R"("task":1,"at":3.0})");
  EXPECT_TRUE(d2.find("complete")->bool_v);
  const JsonValue closed = ask(client, R"({"type":"close","session":"e"})");
  EXPECT_EQ(closed.find("makespan")->num_v, 3.0);
}

TEST(ServiceSessionProtocol, DoubleCompletionPoisonsTheSession) {
  ServiceHub hub;
  HubClient client(hub);
  hello(client);
  ask(client, R"({"type":"open","session":"e","algo":"list-fifo",)"
              R"("procs":2,"clock":"external"})");
  ask(client, R"({"type":"submit","session":"e","tasks":)"
              R"([{"work":5.0,"procs":1},{"work":5.0,"procs":1}]})");
  ask(client, R"({"type":"complete","session":"e","task":0,"at":5.0})");
  // Completing the same task again passes the protocol pre-checks (known
  // id, clock not backwards) — only the engine can catch it, so it is a
  // contract violation and the session is poisoned.
  const JsonValue poison = ask(client, R"({"type":"complete","session":"e",)"
                                       R"("task":0,"at":6.0})");
  EXPECT_EQ(code_of(poison), "contract");
  EXPECT_EQ(code_of(ask(client, R"({"type":"query","session":"e"})")),
            "contract");  // every later verb answers contract
  EXPECT_EQ(code_of(ask(client, R"({"type":"close","session":"e"})")),
            "contract");
  // ...but the close still freed the name, and other sessions are fine.
  EXPECT_EQ(type_of(ask(client, R"({"type":"open","session":"e",)"
                                R"("algo":"list-fifo","procs":2})")),
            "opened");
}

TEST(ServiceSessionProtocol, OfflineAlgorithmsTakeOneSubmission) {
  ServiceHub hub;
  HubClient client(hub);
  hello(client);
  ask(client, R"({"type":"open","session":"o","algo":"divide-conquer",)"
              R"("procs":4})");
  // Offline algorithms reject arrival-time features.
  EXPECT_EQ(code_of(ask(client,
                        R"({"type":"submit","session":"o","tasks":)"
                        R"([{"work":1.0,"release":2.0}]})")),
            "bad-message");
  const JsonValue first = ask(
      client,
      R"({"type":"submit","session":"o","tasks":)"
      R"([{"work":2.0,"procs":2},{"work":1.0,"procs":1},)"
      R"({"work":3.0,"procs":4,"preds":[0,1]}]})");
  ASSERT_EQ(type_of(first), "decisions");
  EXPECT_EQ(code_of(ask(client,
                        R"({"type":"submit","session":"o","tasks":)"
                        R"([{"work":1.0}]})")),
            "bad-sequence");  // single-submission rule
  const JsonValue drained = ask(client, R"({"type":"drain","session":"o"})");
  EXPECT_TRUE(drained.find("complete")->bool_v);
  const JsonValue closed = ask(client, R"({"type":"close","session":"o"})");
  EXPECT_GT(closed.find("makespan")->num_v, 0.0);
  EXPECT_EQ(closed.find("tasks")->num_v, 3.0);
}

TEST(ServiceSessionProtocol, IndependentOnlyPackersRejectEdges) {
  ServiceHub hub;
  HubClient client(hub);
  hello(client);
  ask(client, R"({"type":"open","session":"p","algo":"shelf-nfdh",)"
              R"("procs":4})");
  // Precedence edges violate the packer's preconditions — a message error
  // (construction failed; no engine exists), and the session stays usable.
  EXPECT_EQ(code_of(ask(client,
                        R"({"type":"submit","session":"p","tasks":)"
                        R"([{"work":1.0},{"work":1.0,"preds":[0]}]})")),
            "bad-message");
  const JsonValue ok = ask(client,
                           R"({"type":"submit","session":"p","tasks":)"
                           R"([{"work":1.0,"procs":2},{"work":2.0}]})");
  EXPECT_EQ(type_of(ok), "decisions");
  ask(client, R"({"type":"drain","session":"p"})");
  EXPECT_EQ(type_of(ask(client, R"({"type":"close","session":"p"})")),
            "closed");
}

TEST(ServiceSessionProtocol, CapacityAndKillFlow) {
  ServiceHub hub;
  HubClient client(hub);
  hello(client);
  ask(client, R"({"type":"open","session":"f","algo":"list-fifo",)"
              R"("procs":2})");
  const JsonValue d0 = ask(
      client, R"({"type":"submit","session":"f","tasks":)"
              R"([{"work":2.0},{"work":2.0},{"work":2.0}]})");
  ASSERT_EQ(type_of(d0), "decisions");
  ASSERT_EQ(d0.find("decisions")->items.size(), 2u);

  // A sleep: nothing dispatches into the reduced slot, nothing dies.
  const JsonValue narrowed = ask(
      client, R"({"type":"capacity","session":"f","procs":1,"at":0.5})");
  ASSERT_EQ(type_of(narrowed), "decisions");
  EXPECT_TRUE(narrowed.find("decisions")->items.empty());

  // A kill: the running task 0 loses its work and rejoins the ready set.
  const JsonValue killed = ask(
      client, R"({"type":"kill","session":"f","task":0,"at":1.0})");
  ASSERT_EQ(type_of(killed), "decisions");

  const JsonValue restored = ask(
      client, R"({"type":"capacity","session":"f","procs":2,"at":1.5})");
  ASSERT_EQ(type_of(restored), "decisions");

  ask(client, R"({"type":"drain","session":"f"})");
  const JsonValue closed = ask(client, R"({"type":"close","session":"f"})");
  ASSERT_EQ(type_of(closed), "closed");
  EXPECT_GT(closed.find("makespan")->num_v, 2.0);  // the kill cost time
  EXPECT_EQ(closed.find("tasks")->num_v, 3.0);
}

TEST(ServiceSessionProtocol, CapacityAndKillValidation) {
  ServiceHub hub;
  HubClient client(hub);
  hello(client);
  // Offline algorithms have no engine until their one submission, so
  // platform events have nothing to act on yet: bad-sequence.
  ask(client, R"({"type":"open","session":"w","algo":"rank","procs":2})");
  EXPECT_EQ(code_of(ask(client, R"({"type":"capacity","session":"w",)"
                                R"("procs":1,"at":0.0})")),
            "bad-sequence");
  EXPECT_EQ(code_of(ask(client, R"({"type":"kill","session":"w",)"
                                R"("task":0,"at":0.0})")),
            "bad-sequence");
  // Online sessions build their engine at open; a kill before any task
  // exists is still a sequence error.
  ask(client, R"({"type":"open","session":"v","algo":"list-fifo",)"
              R"("procs":2})");
  EXPECT_EQ(code_of(ask(client, R"({"type":"kill","session":"v",)"
                                R"("task":0,"at":0.0})")),
            "bad-sequence");
  ask(client, R"({"type":"submit","session":"v","tasks":)"
              R"([{"work":4.0},{"work":4.0},{"work":4.0}]})");
  // Above the platform size is a message error, not a sequence error.
  EXPECT_EQ(code_of(ask(client, R"({"type":"capacity","session":"v",)"
                                R"("procs":3,"at":0.5})")),
            "bad-message");
  EXPECT_EQ(code_of(ask(client, R"({"type":"kill","session":"v",)"
                                R"("task":9,"at":0.5})")),
            "bad-sequence");  // never submitted
  EXPECT_EQ(code_of(ask(client, R"({"type":"kill","session":"v",)"
                                R"("task":2,"at":0.5})")),
            "bad-sequence");  // submitted but waiting, not running
  ask(client, R"({"type":"capacity","session":"v","procs":1,"at":1.0})");
  EXPECT_EQ(code_of(ask(client, R"({"type":"capacity","session":"v",)"
                                R"("procs":2,"at":0.5})")),
            "bad-sequence");  // clock backwards
  // None of the rejections poisoned the session.
  ask(client, R"({"type":"capacity","session":"v","procs":2,"at":1.5})");
  ask(client, R"({"type":"drain","session":"v"})");
  EXPECT_EQ(type_of(ask(client, R"({"type":"close","session":"v"})")),
            "closed");
}

TEST(ServiceSessionProtocol, PreEngineTickCannotMoveTimeBackwards) {
  ServiceHub hub;
  HubClient client(hub);
  hello(client);
  // An offline algorithm has no engine until its one submission arrives,
  // but the session clock already ticks: a backwards tick must be the
  // documented bad-sequence error, not a silent clamp (regression test).
  ask(client, R"({"type":"open","session":"t","algo":"rank",)"
              R"("procs":2,"clock":"external"})");
  const JsonValue forward =
      ask(client, R"({"type":"tick","session":"t","at":5.0})");
  ASSERT_EQ(type_of(forward), "decisions");
  EXPECT_EQ(code_of(ask(client, R"({"type":"tick","session":"t",)"
                                R"("at":3.0})")),
            "bad-sequence");
  // The pre-engine clock also gates the first submission's 'now'...
  EXPECT_EQ(code_of(ask(client, R"({"type":"submit","session":"t",)"
                                R"("tasks":[{"work":1.0}],"now":4.0})")),
            "bad-sequence");
  // ...and is the default 'now' when the field is omitted: the engine is
  // born at t = 5, not rewound to 0.
  const JsonValue accepted = ask(
      client, R"({"type":"submit","session":"t","tasks":[{"work":1.0}]})");
  ASSERT_EQ(type_of(accepted), "decisions");
  EXPECT_EQ(accepted.find("now")->num_v, 5.0);
  EXPECT_EQ(type_of(ask(client, R"({"type":"close","session":"t"})")),
            "closed");
}

TEST(ServiceSessionProtocol, ShutdownAnswersGoodbyeAndRaisesTheFlag) {
  ServiceHub hub;
  HubClient client(hub);
  hello(client);
  EXPECT_FALSE(hub.shutdown_requested());
  EXPECT_EQ(type_of(ask(client, R"({"type":"shutdown"})")), "goodbye");
  EXPECT_TRUE(hub.shutdown_requested());
}

TEST(ServiceSessionProtocol, ConnectionsAreIsolatedNamespaces) {
  ServiceHub hub;
  HubClient a(hub);
  HubClient b(hub);
  hello(a);
  hello(b);
  EXPECT_EQ(type_of(ask(a, R"({"type":"open","session":"s",)"
                           R"("algo":"list-fifo","procs":2})")),
            "opened");
  // The same name is free on connection b, and b cannot see a's session
  // state beyond that.
  EXPECT_EQ(type_of(ask(b, R"({"type":"open","session":"s",)"
                           R"("algo":"catbatch","procs":4})")),
            "opened");
  EXPECT_EQ(hub.connection_count(), 2u);
}

}  // namespace
}  // namespace catbatch
