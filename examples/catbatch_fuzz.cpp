// catbatch_fuzz: seeded differential fuzzer for every registered scheduler.
//
//   $ ./catbatch_fuzz --seed 1 --iters 10000            # smoke sweep
//   $ ./catbatch_fuzz --iters 500 --corpus tests/corpus # persist repros
//   $ ./catbatch_fuzz --replay tests/corpus             # regression replay
//
// Each iteration generates (and optionally mutates) one instance, runs the
// whole scheduler registry on it, and checks the invariant battery of
// src/qa/oracles.hpp. Failing instances are shrunk to minimal repros and,
// with --corpus, written in the instances/io.hpp dialect for permanent
// replay. The report — including the instance fingerprint — is
// bit-identical for any --jobs value. Battery and triage workflow:
// docs/FUZZING.md.
//
// Exit codes: 0 = clean, 1 = findings (or failed replay), 2 = bad usage.
#include <cstdint>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "qa/corpus.hpp"
#include "qa/fuzzer.hpp"
#include "qa/protocol_fuzz.hpp"
#include "qa/scenario_fuzz.hpp"
#include "support/cli.hpp"

namespace {

using namespace catbatch;

void print_usage(std::ostream& os) {
  os << "usage: catbatch_fuzz [options]\n"
        "  --seed S         base seed; iteration k uses mix(seed, k)\n"
        "                   (default 1)\n"
        "  --iters N        iterations to run (default 1000)\n"
        "  --jobs N         worker threads (default: CATBATCH_JOBS, else\n"
        "                   hardware); the report is identical for any N\n"
        "  --max-tasks N    instance size cap (default 48; 100000 under\n"
        "                   --huge)\n"
        "  --max-procs P    platform width cap (default 16)\n"
        "  --huge           draw streaming-scale instances (bounded-degree\n"
        "                   O(n)-edge shapes near --max-tasks); implies\n"
        "                   --mutate 0 and --no-shrink unless given\n"
        "  --mutate K       up to K mutations per instance (default 2,\n"
        "                   0 disables mutation)\n"
        "  --threads T      with T > 1, additionally run every instance\n"
        "                   through the parallel SoA build + parallel\n"
        "                   engine ingest and require the schedule to be\n"
        "                   bit-identical to the serial run (the\n"
        "                   parallel-ingest oracle; default 1 = skip)\n"
        "  --chunk C        block size for the parallel-ingest oracle's\n"
        "                   fixed partition (default 4096)\n"
        "  --max-findings N stop recording after N findings (default 16)\n"
        "  --no-shrink      report findings without minimizing them\n"
        "  --corpus DIR     write shrunk repros into DIR as JSON\n"
        "  --replay DIR     replay a corpus directory instead of fuzzing:\n"
        "                   every case must pass the full battery\n"
        "  --protocol N     fuzz the catbatchd wire protocol instead: N\n"
        "                   adversarial connection conversations against\n"
        "                   the in-process service hub\n"
        "  --scenario N     fuzz the fault/dynamic-platform scenario layer\n"
        "                   instead: N random (instance, scenario,\n"
        "                   algorithm) runs checked against the scenario\n"
        "                   contract battery (docs/SCENARIOS.md)\n"
        "  --quiet          only print the final summary line\n"
        "  --help           print this message and exit\n";
}

int usage() {
  print_usage(std::cerr);
  return 2;
}

/// Same strict flag policy as sched_cli (support/cli.hpp): non-numeric or
/// out-of-range values get a one-line error and exit 2.
bool parse_flag(const std::string& flag, const char* text,
                std::int64_t min_value, std::int64_t max_value,
                std::int64_t& out) {
  return parse_flag_value("catbatch_fuzz", flag, text, min_value, max_value,
                          out);
}

int scenario_fuzz_main(std::uint64_t seed, std::size_t iterations,
                       bool quiet) {
  ScenarioFuzzOptions options;
  options.seed = seed;
  options.iterations = iterations;
  const ScenarioFuzzReport report = run_scenario_fuzz(options);
  if (!quiet) {
    for (const std::string& finding : report.findings) {
      std::cout << "FINDING " << finding << "\n";
    }
  }
  std::cout << "scenario-fuzz: " << report.iterations_run << " runs, "
            << report.kills_applied << " kills, "
            << report.capacity_events << " capacity changes, "
            << report.findings.size() << " finding(s)\n";
  return report.clean() ? 0 : 1;
}

int protocol_fuzz_main(std::uint64_t seed, std::size_t iterations,
                       bool quiet) {
  ProtocolFuzzOptions options;
  options.seed = seed;
  options.iterations = iterations;
  const ProtocolFuzzReport report = run_protocol_fuzz(options);
  if (!quiet) {
    for (const std::string& finding : report.findings) {
      std::cout << "FINDING " << finding << "\n";
    }
  }
  std::cout << "protocol-fuzz: " << report.iterations_run
            << " conversations, " << report.lines_sent << " lines, "
            << report.error_replies << " error replies, "
            << report.findings.size() << " finding(s)\n";
  return report.clean() ? 0 : 1;
}

int replay_corpus(const std::string& directory, bool quiet) {
  std::size_t failed = 0;
  std::vector<std::pair<std::string, CorpusCase>> cases;
  try {
    cases = load_corpus(directory);
  } catch (const std::exception& e) {
    std::cerr << "catbatch_fuzz: " << e.what() << "\n";
    return 2;
  }
  for (const auto& [file, corpus_case] : cases) {
    const auto failures = replay_case(corpus_case);
    if (failures.empty()) {
      if (!quiet) std::cout << "ok   " << file << "\n";
      continue;
    }
    ++failed;
    std::cout << "FAIL " << file << " (recorded oracle: "
              << corpus_case.oracle << ")\n";
    for (const OracleFailure& f : failures) {
      std::cout << "  [" << f.oracle << "] "
                << (f.scheduler.empty() ? "<instance>" : f.scheduler) << ": "
                << f.detail << "\n";
    }
  }
  std::cout << "replayed " << cases.size() << " corpus case(s), " << failed
            << " failing\n";
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions options;
  std::string replay_dir;
  std::size_t protocol_iters = 0;
  std::size_t scenario_iters = 0;
  bool quiet = false;
  bool max_tasks_given = false;
  bool mutate_given = false;

  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    const bool has_value = k + 1 < argc;
    std::int64_t value = 0;
    if (arg == "--seed" && has_value) {
      if (!parse_flag(arg, argv[++k], 0,
                      std::numeric_limits<std::int64_t>::max(), value)) {
        return 2;
      }
      options.seed = static_cast<std::uint64_t>(value);
    } else if (arg == "--iters" && has_value) {
      if (!parse_flag(arg, argv[++k], 1, 100'000'000, value)) return 2;
      options.iterations = static_cast<std::size_t>(value);
    } else if (arg == "--jobs" && has_value) {
      if (!parse_flag(arg, argv[++k], 0, 1 << 20, value)) return 2;
      options.jobs = static_cast<int>(value);
    } else if (arg == "--max-tasks" && has_value) {
      if (!parse_flag(arg, argv[++k], 1, 10'000'000, value)) return 2;
      options.generator.max_tasks = static_cast<std::size_t>(value);
      max_tasks_given = true;
    } else if (arg == "--huge") {
      options.generator.huge = true;
    } else if (arg == "--max-procs" && has_value) {
      if (!parse_flag(arg, argv[++k], 1, 1 << 20, value)) return 2;
      options.generator.max_procs = static_cast<int>(value);
    } else if (arg == "--mutate" && has_value) {
      if (!parse_flag(arg, argv[++k], 0, 1'000, value)) return 2;
      options.mutations = static_cast<std::size_t>(value);
      mutate_given = true;
    } else if (arg == "--threads" && has_value) {
      if (!parse_flag(arg, argv[++k], 1, 1 << 10, value)) return 2;
      options.oracles.parallel.threads = static_cast<int>(value);
    } else if (arg == "--chunk" && has_value) {
      if (!parse_flag(arg, argv[++k], 1, 100'000'000, value)) return 2;
      options.oracles.parallel.chunk = static_cast<std::size_t>(value);
    } else if (arg == "--max-findings" && has_value) {
      if (!parse_flag(arg, argv[++k], 0, 1'000'000, value)) return 2;
      options.max_findings = static_cast<std::size_t>(value);
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--corpus" && has_value) {
      options.corpus_dir = argv[++k];
    } else if (arg == "--replay" && has_value) {
      replay_dir = argv[++k];
    } else if (arg == "--protocol" && has_value) {
      if (!parse_flag(arg, argv[++k], 1, 100'000'000, value)) return 2;
      protocol_iters = static_cast<std::size_t>(value);
    } else if (arg == "--scenario" && has_value) {
      if (!parse_flag(arg, argv[++k], 1, 100'000'000, value)) return 2;
      scenario_iters = static_cast<std::size_t>(value);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help") {
      print_usage(std::cout);
      return 0;
    } else {
      std::cerr << "catbatch_fuzz: unknown or incomplete option '" << arg
                << "'\n";
      return usage();
    }
  }

  if (options.generator.huge) {
    // Streaming-scale defaults: mutation walks and shrink bisections are
    // priced for 48-task instances; at 100k tasks they dominate the run
    // without adding coverage the generator families don't already have.
    if (!max_tasks_given) options.generator.max_tasks = 100'000;
    if (!mutate_given) options.mutations = 0;
    options.shrink = false;
    options.oracles.scale_gate_tasks = 10'000;
  }

  if (protocol_iters > 0) {
    return protocol_fuzz_main(options.seed, protocol_iters, quiet);
  }
  if (scenario_iters > 0) {
    return scenario_fuzz_main(options.seed, scenario_iters, quiet);
  }
  if (!replay_dir.empty()) return replay_corpus(replay_dir, quiet);

  if (!quiet) {
    options.on_progress = [](const std::string& line) { std::cout << line; };
  }
  const FuzzReport report = run_fuzzer(options);
  std::cout << "fuzz: " << report.iterations_run << " iterations, "
            << report.instances_with_failures << " failing instance(s), "
            << report.findings.size() << " recorded finding(s), fingerprint "
            << std::hex << report.instance_fingerprint << std::dec << "\n";
  return report.clean() ? 0 : 1;
}
