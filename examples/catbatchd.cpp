// catbatchd: the scheduler-as-a-service daemon.
//
// Speaks the line-delimited JSON protocol (docs/SERVICE.md) over one of two
// transports and multiplexes any number of concurrent scheduling sessions,
// each running any registry algorithm:
//
//   $ ./catbatchd                                  # stdio, one connection
//   $ ./catbatchd --protocol unix --socket /tmp/catbatch.sock --jobs 4
//   $ ./catbatchd --protocol-spec                  # machine-readable spec
//
// The daemon exits when a client sends {"type":"shutdown"} (stdio: also on
// EOF). --protocol-spec prints the accepted message set generated from the
// same table the server validates against; tools/docs_check.sh diffs it
// against docs/SERVICE.md.
#include <array>
#include <iostream>
#include <string>

#include "service/daemon.hpp"
#include "service/protocol.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"

namespace {

using namespace catbatch;

void print_usage(std::ostream& os) {
  os << "usage: catbatchd [options]\n"
        "  --protocol MODE  transport: stdio | unix (default stdio)\n"
        "  --socket PATH    socket file for --protocol unix\n"
        "  --jobs N         worker threads for connection strands\n"
        "                   (default: CATBATCH_JOBS, else hardware)\n"
        "  --protocol-spec  print the wire-protocol spec and exit\n"
        "  --help           print this message and exit\n"
        "exit codes: 0 clean shutdown, 1 runtime failure, 2 usage error,\n"
        "            4 contract violation\n";
}

int usage() {
  print_usage(std::cerr);
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  const FlagParser flags("catbatchd");
  constexpr std::array<std::string_view, 2> kProtocols = {"stdio", "unix"};

  std::string protocol = "stdio";
  std::string socket_path;
  int jobs = 0;

  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    std::int64_t value = 0;
    if (arg == "--protocol" && k + 1 < argc) {
      if (!flags.choice(arg, argv[++k], kProtocols, protocol)) {
        return kExitUsage;
      }
    } else if (arg == "--socket" && k + 1 < argc) {
      socket_path = argv[++k];
    } else if (arg == "--jobs" && k + 1 < argc) {
      if (!flags.parse(arg, argv[++k], 0, 1 << 20, value)) return kExitUsage;
      jobs = static_cast<int>(value);
    } else if (arg == "--protocol-spec") {
      std::cout << protocol_spec_text();
      return kExitOk;
    } else if (arg == "--help") {
      print_usage(std::cout);
      return kExitOk;
    } else {
      return usage();
    }
  }
  if (protocol == "unix" && socket_path.empty()) {
    std::cerr << "catbatchd: --protocol unix requires --socket PATH\n";
    return kExitUsage;
  }

  try {
    ServiceHub hub;
    if (protocol == "unix") {
      DaemonOptions options;
      options.socket_path = socket_path;
      options.jobs = jobs;
      serve_unix(hub, options);
    } else {
      serve_stdio(hub, std::cin, std::cout);
    }
    return kExitOk;
  } catch (const ContractViolation& e) {
    std::cerr << "catbatchd: contract violation: " << e.what() << "\n";
    return kExitContract;
  } catch (const std::exception& e) {
    std::cerr << "catbatchd: " << e.what() << "\n";
    return kExitRuntime;
  }
}
