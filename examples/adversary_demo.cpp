// Adversary demo: watch the Z^Alg_P(K) construction (Definition 9) punish
// an online scheduler in real time, then see the offline two-phase schedule
// from Lemma 11 dispatch the very same realized instance.
//
//   $ ./adversary_demo [P] [K]
#include <cstdlib>
#include <iostream>

#include "core/bounds.hpp"
#include "instances/adversary.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main(int argc, char** argv) {
  using namespace catbatch;
  const int P = argc > 1 ? std::atoi(argv[1]) : 4;
  const int K = argc > 2 ? std::atoi(argv[2]) : 2;
  if (P < 1 || K < 2) {
    std::cerr << "usage: adversary_demo [P>=1] [K>=2]\n";
    return 1;
  }
  const Time eps = 0x1.0p-8;

  std::cout << "Z^Alg_" << P << "(" << K << "): " << z_task_count(P, K)
            << " tasks across " << P << " adaptive layers of X_" << P << "("
            << K << ")\n";
  std::cout << "Lemma 10 floor for ANY online algorithm : "
            << format_number(z_online_lower_bound(P, K)) << "\n";
  std::cout << "Lemma 11 ceiling for the offline optimum: "
            << format_number(z_offline_upper_bound(P, K, eps)) << "\n\n";

  TextTable table({"scheduler", "online makespan", "offline construction",
                   "gap", "ratio vs Lb"});
  CatBatchScheduler catbatch;
  ListScheduler fifo;
  ListScheduler lpt(ListSchedulerOptions{ListPriority::LongestFirst, false});
  OnlineScheduler* lineup[] = {&catbatch, &fifo, &lpt};
  for (OnlineScheduler* sched : lineup) {
    // Each scheduler gets its *own* adversary: the instance adapts to the
    // algorithm (that is the whole point of Definition 9).
    ZAdversarySource source(P, K, eps);
    const SimResult online = simulate(source, *sched, P);
    require_valid_schedule(source.realized_graph(), online.schedule, P);

    const Schedule offline = z_offline_schedule(source);
    require_valid_schedule(source.realized_graph(), offline, P);

    const Time lb = makespan_lower_bound(source.realized_graph(), P);
    table.add_row(
        {sched->name(), format_number(online.makespan, 3),
         format_number(offline.makespan(), 3),
         format_number(static_cast<double>(online.makespan) /
                           static_cast<double>(offline.makespan()),
                       2),
         format_number(static_cast<double>(online.makespan) /
                           static_cast<double>(lb),
                       2)});
  }
  std::cout << table.render();
  std::cout << "\nThe gap column approaches P/2 as K grows (Theorem 4); no "
               "online scheduler escapes, CatBatch included — its guarantee "
               "is relative to n (Theorem 1), and n grows exponentially in "
               "P here.\n";
  return 0;
}
