// paper_figures: render the paper's running example as SVG artifacts —
// Figure 6's CatBatch schedule (colored by batch) and, for contrast, the
// greedy list schedule of the same instance. Writes into the current
// directory (or a directory given as argv[1]).
//
//   $ ./paper_figures [output_dir]
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/batch_stats.hpp"
#include "instances/examples.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/svg.hpp"
#include "sim/validate.hpp"
#include "support/text.hpp"

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  out << content;
  std::cout << "wrote " << path << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace catbatch;
  const std::string dir = argc > 1 ? std::string(argv[1]) + "/" : "";

  const TaskGraph g = make_paper_example();

  // Figure 6: CatBatch on P = 4, colored by batch.
  CatBatchScheduler cat;
  const SimResult cat_run = simulate(g, cat, 4);
  require_valid_schedule(g, cat_run.schedule, 4);
  SvgGanttOptions options;
  options.color_groups = batch_color_groups(cat.batch_history(), g.size());
  if (!write_file(dir + "figure6_catbatch.svg",
                  svg_gantt(g, cat_run.schedule, 4, options))) {
    return 1;
  }

  // Contrast: greedy list scheduling of the same instance.
  ListScheduler fifo;
  const SimResult fifo_run = simulate(g, fifo, 4);
  require_valid_schedule(g, fifo_run.schedule, 4);
  if (!write_file(dir + "figure6_greedy.svg",
                  svg_gantt(g, fifo_run.schedule, 4))) {
    return 1;
  }

  std::cout << "catbatch makespan " << format_number(cat_run.makespan, 4)
            << " (paper: 15.2), greedy makespan "
            << format_number(fifo_run.makespan, 4) << "\n";
  return 0;
}
