// HPC workload comparison: schedule tiled Cholesky / LU / stencil / FFT
// DAGs with the full scheduler lineup and compare makespans, ratios and
// utilization — the "practical efficiency" study the paper's conclusion
// calls for.
//
//   $ ./hpc_workload [procs]
#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/metrics.hpp"
#include "analysis/report.hpp"
#include "instances/workloads.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main(int argc, char** argv) {
  using namespace catbatch;
  const int procs = argc > 1 ? std::atoi(argv[1]) : 16;
  if (procs < 1) {
    std::cerr << "usage: hpc_workload [procs>=1]\n";
    return 1;
  }

  KernelCosts costs;
  costs.jitter = 0.15;  // realistic non-uniform kernel times
  costs.gemm_procs = std::min(4, procs);
  costs.trsm_procs = std::min(2, procs);

  struct Workload {
    std::string name;
    TaskGraph graph;
  };
  const Workload workloads[] = {
      {"cholesky 10x10 tiles", cholesky_dag(10, costs)},
      {"lu 8x8 tiles", lu_dag(8, costs)},
      {"stencil 24x24", stencil_dag(24, 24, 0.5, 1)},
      {"fft 2^6 points", fft_dag(6, 0.25, 1)},
      {"map-reduce 64->8", map_reduce_dag(64, 8, 1.0, 2.0, 1,
                                          std::min(2, procs))},
      {"montage 16 images", montage_dag(16, std::min(4, procs))},
  };

  for (const Workload& w : workloads) {
    std::cout << "\n--- " << w.name << " (" << w.graph.size() << " tasks, P="
              << procs << ") ---\n";
    TextTable table = make_metrics_table();
    for (const NamedScheduler& named : standard_scheduler_lineup()) {
      const auto scheduler = named.make();
      add_metrics_row(table, evaluate(w.graph, *scheduler, procs));
    }
    std::cout << table.render();
  }

  std::cout << "\nReading the tables: \"ratio\" is makespan / Lb(I); the "
               "paper predicts strict CatBatch trails greedy schedulers on "
               "well-behaved DAGs (its batch barrier idles processors) while "
               "staying within log2(n)+3 of optimal everywhere.\n";
  return 0;
}
