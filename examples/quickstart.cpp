// Quickstart: build a small rigid task graph, schedule it online with
// CatBatch, and inspect the result.
//
//   $ ./quickstart
//
// Walks through the public API in the order a new user would meet it:
// TaskGraph -> simulate() -> validation -> metrics -> Gantt chart.
#include <iostream>

#include "analysis/metrics.hpp"
#include "core/bounds.hpp"
#include "core/category.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "sim/validate.hpp"
#include "support/text.hpp"

int main() {
  using namespace catbatch;

  // 1. Describe the instance: a small fork-join with mixed widths.
  //    Every task has an execution time and a rigid processor requirement.
  TaskGraph graph;
  const TaskId setup = graph.add_task(1.0, 1, "setup");
  const TaskId simA = graph.add_task(4.0, 2, "simA");
  const TaskId simB = graph.add_task(3.0, 2, "simB");
  const TaskId simC = graph.add_task(2.0, 1, "simC");
  const TaskId merge = graph.add_task(1.0, 4, "merge");
  const TaskId report = graph.add_task(0.5, 1, "report");
  graph.add_edge(setup, simA);
  graph.add_edge(setup, simB);
  graph.add_edge(setup, simC);
  graph.add_edge(simA, merge);
  graph.add_edge(simB, merge);
  graph.add_edge(simC, merge);
  graph.add_edge(merge, report);

  const int procs = 4;
  graph.validate(procs);

  // 2. Run the paper's online algorithm. The engine reveals each task to
  //    the scheduler only when its predecessors have completed.
  CatBatchScheduler catbatch;
  const SimResult result = simulate(graph, catbatch, procs);

  // 3. Machine-check the schedule (precedence, capacity, processor sets).
  require_valid_schedule(graph, result.schedule, procs);

  // 4. Metrics against the makespan lower bound Lb = max(A/P, C).
  std::cout << "CatBatch makespan : " << format_number(result.makespan)
            << "\n";
  std::cout << "Lower bound Lb    : "
            << format_number(makespan_lower_bound(graph, procs)) << "\n";
  std::cout << "Utilization       : "
            << format_number(result.average_utilization(procs), 3) << "\n";

  // 5. The batch structure CatBatch discovered (category ζ per batch).
  std::cout << "\nBatches (increasing category ζ):\n";
  for (const BatchRecord& batch : catbatch.batch_history()) {
    std::cout << "  ζ=" << format_number(batch.category.value())
              << "  [" << format_number(batch.started) << ", "
              << format_number(batch.finished) << ")  tasks:";
    for (const TaskId id : batch.tasks) {
      std::cout << ' ' << graph.task(id).name;
    }
    std::cout << '\n';
  }

  // 6. Gantt chart (one row per processor).
  std::cout << "\n" << ascii_gantt(graph, result.schedule, procs) << "\n";

  // 7. Compare against classic greedy list scheduling.
  ListScheduler list;
  const RunMetrics lm = evaluate(graph, list, procs);
  const RunMetrics cm = evaluate(graph, catbatch, procs);
  std::cout << "list(fifo) makespan " << format_number(lm.makespan)
            << " vs catbatch " << format_number(cm.makespan) << "\n";
  return 0;
}
