// Uncertainty demo — the first future-work direction of Section 7: what
// happens when declared execution times are only estimates? The engine
// simulates true durations that deviate from the declared ones by up to a
// chosen relative error, and we watch how the estimate-consuming
// schedulers (relaxed CatBatch via categories, EASY via reservations)
// degrade compared to the estimate-oblivious FIFO list.
//
//   $ ./uncertainty_demo [procs] [tasks]
#include <cstdlib>
#include <iostream>

#include "core/bounds.hpp"
#include "instances/random_dags.hpp"
#include "sched/backfill.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/relaxed_catbatch.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

namespace {

using namespace catbatch;

/// Wraps a static graph, declaring noisy estimates of the true durations.
class NoisySource final : public InstanceSource {
 public:
  NoisySource(const TaskGraph& graph, double max_error, std::uint64_t seed)
      : graph_(graph), max_error_(max_error), seed_(seed) {}

  std::vector<SourceTask> start() override {
    Rng rng(seed_);
    std::vector<SourceTask> out;
    for (TaskId id = 0; id < graph_.size(); ++id) {
      const Task& t = graph_.task(id);
      SourceTask st;
      st.work = t.work;
      const double factor =
          rng.uniform_real(1.0 - max_error_, 1.0 + max_error_);
      st.declared_work =
          quantize_time(static_cast<double>(t.work) * factor);
      st.procs = t.procs;
      const auto preds = graph_.predecessors(id);
      st.predecessors.assign(preds.begin(), preds.end());
      out.push_back(std::move(st));
    }
    return out;
  }
  std::vector<SourceTask> on_complete(TaskId, Time) override { return {}; }
  const TaskGraph& realized_graph() const override { return graph_; }

 private:
  const TaskGraph& graph_;
  double max_error_;
  std::uint64_t seed_;
};

}  // namespace

int main(int argc, char** argv) {
  const int procs = argc > 1 ? std::atoi(argv[1]) : 16;
  const std::size_t tasks =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 300;
  if (procs < 1 || tasks < 1) {
    std::cerr << "usage: uncertainty_demo [procs>=1] [tasks>=1]\n";
    return 1;
  }

  Rng rng(4242);
  RandomTaskParams params;
  params.procs.max_procs = procs;
  const TaskGraph g = random_layered_dag(
      rng, tasks, std::max<std::size_t>(2, tasks / 15), params);
  const Time lb = makespan_lower_bound(g, procs);
  std::cout << "instance: " << g.size() << " tasks, P=" << procs
            << ", Lb=" << format_number(lb, 3) << "\n\n";

  TextTable table({"estimate error", "relaxed-catbatch", "easy-backfill",
                   "list-fifo (oblivious)"});
  for (const double error : {0.0, 0.25, 0.5, 0.75, 0.95}) {
    std::vector<std::string> row{format_number(error * 100, 0) + "%"};
    RelaxedCatBatch relaxed;
    EasyBackfill easy;
    ListScheduler fifo;
    OnlineScheduler* lineup[] = {&relaxed, &easy, &fifo};
    for (OnlineScheduler* sched : lineup) {
      NoisySource source(g, error, 7);
      const SimResult r = simulate(source, *sched, procs);
      require_valid_schedule(g, r.schedule, procs);
      row.push_back(format_number(static_cast<double>(r.makespan / lb), 3));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.render();
  std::cout << "\nReading: values are makespan/Lb. FIFO never reads the "
               "estimates, so its column is flat by construction; the "
               "estimate-driven schedulers wobble but stay robust — wrong "
               "categories and stale reservations mis-prioritize without "
               "ever producing an infeasible schedule (the engine executes "
               "true durations).\n";
  return 0;
}
