// catbatch_loadgen: protocol load generator for catbatchd.
//
// Drives many concurrent scheduling sessions of pseudo-random layered DAGs
// through the wire protocol and reports throughput and per-request latency
// percentiles:
//
//   $ ./catbatch_loadgen --session 256 --concurrency 8      # in-process hub
//   $ ./catbatch_loadgen --protocol unix --socket /tmp/catbatch.sock
//   $ ./catbatch_loadgen --algo easy-backfill --clock external --json out.json
//
// --protocol hub serves the traffic against an in-process ServiceHub — the
// number it reports is protocol + engine cost with zero I/O, the same path
// bench_service measures. --protocol unix talks to a running daemon.
#include <array>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <system_error>

#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/loadgen.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"

namespace {

using namespace catbatch;

void print_usage(std::ostream& os) {
  os << "usage: catbatch_loadgen [options]\n"
        "  --protocol MODE    target: hub (in-process, default) | unix\n"
        "  --socket PATH      socket file for --protocol unix\n"
        "  --session N        total sessions to run (default 256)\n"
        "  --concurrency N    client threads, one connection each"
        " (default 8)\n"
        "  --tasks N          tasks per session (default 64)\n"
        "  --procs N          platform size per session (default 64)\n"
        "  --algo NAME        registry algorithm (default catbatch)\n"
        "  --clock MODE       session clock: simulated | external"
        " (default simulated)\n"
        "  --seed S           base seed for the generated DAGs (default 1)\n"
        "  --json FILE        write the stats as JSON to FILE\n"
        "  --shutdown         after the run, ask the server to shut down\n"
        "  --help             print this message and exit\n"
        "exit codes: 0 success, 1 runtime failure, 2 usage error,\n"
        "            3 protocol error, 4 contract violation\n";
}

int usage() {
  print_usage(std::cerr);
  return kExitUsage;
}

std::string stats_json(const LoadgenOptions& options,
                       const LoadgenStats& stats) {
  JsonWriter w;
  w.begin_object();
  w.key("bench").value("catbatch_loadgen");
  w.key("algo").value(options.algo);
  w.key("clock").value(options.clock);
  w.key("sessions").value(stats.sessions);
  w.key("concurrency").value(options.concurrency);
  w.key("tasks_per_session").value(options.tasks_per_session);
  w.key("requests").value(stats.requests);
  w.key("decisions").value(stats.decisions);
  w.key("elapsed_sec").value(stats.elapsed_sec);
  w.key("sessions_per_sec").value(stats.sessions_per_sec);
  w.key("decisions_per_sec").value(stats.decisions_per_sec);
  w.key("p50_latency_us").value(stats.p50_latency_us);
  w.key("p99_latency_us").value(stats.p99_latency_us);
  w.key("max_latency_us").value(stats.max_latency_us);
  w.end_object();
  return w.str();
}

}  // namespace

int main(int argc, char** argv) {
  const FlagParser flags("catbatch_loadgen");
  constexpr std::array<std::string_view, 2> kProtocols = {"hub", "unix"};
  constexpr std::array<std::string_view, 2> kClocks = {"simulated",
                                                       "external"};

  std::string protocol = "hub";
  std::string socket_path, json_path;
  bool shutdown_after = false;
  LoadgenOptions options;

  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    std::int64_t value = 0;
    if (arg == "--protocol" && k + 1 < argc) {
      if (!flags.choice(arg, argv[++k], kProtocols, protocol)) {
        return kExitUsage;
      }
    } else if (arg == "--socket" && k + 1 < argc) {
      socket_path = argv[++k];
    } else if (arg == "--session" && k + 1 < argc) {
      if (!flags.parse(arg, argv[++k], 1, 1'000'000, value)) {
        return kExitUsage;
      }
      options.sessions = static_cast<int>(value);
    } else if (arg == "--concurrency" && k + 1 < argc) {
      if (!flags.parse(arg, argv[++k], 1, 4096, value)) return kExitUsage;
      options.concurrency = static_cast<int>(value);
    } else if (arg == "--tasks" && k + 1 < argc) {
      if (!flags.parse(arg, argv[++k], 1, 1'000'000, value)) {
        return kExitUsage;
      }
      options.tasks_per_session = static_cast<int>(value);
    } else if (arg == "--procs" && k + 1 < argc) {
      if (!flags.parse(arg, argv[++k], 1, 1 << 20, value)) return kExitUsage;
      options.procs = static_cast<int>(value);
    } else if (arg == "--algo" && k + 1 < argc) {
      options.algo = argv[++k];
    } else if (arg == "--clock" && k + 1 < argc) {
      if (!flags.choice(arg, argv[++k], kClocks, options.clock)) {
        return kExitUsage;
      }
    } else if (arg == "--seed" && k + 1 < argc) {
      if (!flags.parse(arg, argv[++k], 0,
                       std::numeric_limits<std::int64_t>::max(), value)) {
        return kExitUsage;
      }
      options.seed = static_cast<std::uint64_t>(value);
    } else if (arg == "--json" && k + 1 < argc) {
      json_path = argv[++k];
    } else if (arg == "--shutdown") {
      shutdown_after = true;
    } else if (arg == "--help") {
      print_usage(std::cout);
      return kExitOk;
    } else {
      return usage();
    }
  }
  if (protocol == "unix" && socket_path.empty()) {
    std::cerr << "catbatch_loadgen: --protocol unix requires --socket PATH\n";
    return kExitUsage;
  }

  try {
    ServiceHub hub;  // only used by --protocol hub
    const ClientFactory factory = [&]() -> std::unique_ptr<LineClient> {
      if (protocol == "unix") {
        return std::make_unique<SocketClient>(socket_path);
      }
      return std::make_unique<HubClient>(hub);
    };
    const LoadgenStats stats = run_loadgen(factory, options);
    std::cerr << "target        : " << protocol << "\n"
              << "algo          : " << options.algo << " (clock "
              << options.clock << ")\n"
              << "sessions      : " << stats.sessions << " ("
              << options.concurrency << " threads, "
              << options.tasks_per_session << " tasks each)\n"
              << "elapsed       : " << stats.elapsed_sec << " s\n"
              << "sessions/sec  : " << stats.sessions_per_sec << "\n"
              << "decisions/sec : " << stats.decisions_per_sec << "\n"
              << "latency (us)  : p50 " << stats.p50_latency_us << ", p99 "
              << stats.p99_latency_us << ", max " << stats.max_latency_us
              << "\n";
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "cannot write " << json_path << "\n";
        return kExitRuntime;
      }
      out << stats_json(options, stats) << "\n";
      std::cerr << "wrote " << json_path << "\n";
    }
    if (shutdown_after) {
      // One dedicated connection: hello, then ask the server to stop.
      const std::unique_ptr<LineClient> client = factory();
      protocol_handshake(*client);
      const std::string reply = client->request("{\"type\":\"shutdown\"}");
      if (reply.find("\"type\":\"goodbye\"") == std::string::npos) {
        throw std::runtime_error("shutdown request answered: " + reply);
      }
      std::cerr << "server acknowledged shutdown\n";
    }
    return kExitOk;
  } catch (const ContractViolation& e) {
    std::cerr << "catbatch_loadgen: contract violation: " << e.what()
              << "\n";
    return kExitContract;
  } catch (const std::system_error& e) {
    // Transport failures (connect, send, recv) are runtime, not protocol.
    std::cerr << "catbatch_loadgen: " << e.what() << "\n";
    return kExitRuntime;
  } catch (const std::runtime_error& e) {
    // Unexpected or error replies from the server surface here.
    std::cerr << "catbatch_loadgen: protocol error: " << e.what() << "\n";
    return kExitProtocol;
  } catch (const std::exception& e) {
    std::cerr << "catbatch_loadgen: " << e.what() << "\n";
    return kExitRuntime;
  }
}
