// Strip-packing demo (Remark 1): pack a precedence-constrained set of
// rectangles with CatBatch+NFDH, print the band structure, and render an
// ASCII picture of the strip.
//
//   $ ./strip_demo
#include <algorithm>
#include <iostream>
#include <vector>

#include "strip/catbatch_strip.hpp"
#include "strip/strip_validate.hpp"
#include "support/rng.hpp"
#include "support/text.hpp"

namespace {

/// Renders the packing as text: x is 48 columns wide, y grows downward.
std::string render_strip(const catbatch::StripInstance& instance,
                         const catbatch::StripPacking& packing,
                         catbatch::Time total_height) {
  constexpr std::size_t kWidth = 48;
  const std::size_t rows = static_cast<std::size_t>(
      std::max(1.0, static_cast<double>(total_height) * 4.0));
  std::vector<std::string> grid(rows, std::string(kWidth, '.'));
  for (const catbatch::PlacedRect& p : packing.entries()) {
    const catbatch::Rect& r = instance.rect(p.id);
    const char glyph = r.name.empty()
                           ? static_cast<char>('a' + (p.id % 26))
                           : r.name.front();
    const auto x0 = static_cast<std::size_t>(p.x * kWidth);
    const auto x1 = std::min<std::size_t>(
        kWidth, static_cast<std::size_t>((p.x + r.width) * kWidth));
    const auto y0 = static_cast<std::size_t>(
        static_cast<double>(p.y) / static_cast<double>(total_height) *
        static_cast<double>(rows));
    const auto y1 = std::min<std::size_t>(
        rows, static_cast<std::size_t>(
                  static_cast<double>(p.y + r.height) /
                  static_cast<double>(total_height) *
                  static_cast<double>(rows)));
    for (std::size_t y = y0; y < std::max(y1, y0 + 1); ++y) {
      for (std::size_t x = x0; x < std::max(x1, x0 + 1); ++x) {
        grid[y][x] = glyph;
      }
    }
  }
  std::string out;
  // Print top (largest y) last so "up" in the strip is up on screen.
  for (auto it = grid.rbegin(); it != grid.rend(); ++it) {
    out += '|';
    out += *it;
    out += "|\n";
  }
  return out;
}

}  // namespace

int main() {
  using namespace catbatch;

  // A pipeline of rectangles: wide ingest, parallel transforms, a narrow
  // tail — widths are fractions of the strip (1.0 = full width).
  StripInstance instance;
  const TaskId ingest = instance.add_rect(1.0, 0.5, "N");
  const TaskId t1 = instance.add_rect(0.375, 2.0, "A");
  const TaskId t2 = instance.add_rect(0.375, 1.5, "B");
  const TaskId t3 = instance.add_rect(0.25, 2.5, "C");
  const TaskId join = instance.add_rect(0.75, 0.5, "J");
  const TaskId tail = instance.add_rect(0.125, 1.0, "T");
  instance.add_edge(ingest, t1);
  instance.add_edge(ingest, t2);
  instance.add_edge(ingest, t3);
  instance.add_edge(t1, join);
  instance.add_edge(t2, join);
  instance.add_edge(t3, join);
  instance.add_edge(join, tail);

  const CatBatchStripResult result = catbatch_strip_pack(instance);
  require_valid_strip_packing(instance, result.packing);

  std::cout << "Strip height      : " << format_number(result.total_height)
            << "\n";
  std::cout << "Lower bound       : "
            << format_number(instance.height_lower_bound()) << "\n";
  std::cout << "Remark 1 bound    : "
            << format_number(catbatch_strip_bound(instance)) << "\n\n";

  std::cout << "Bands (one per category, bottom to top):\n";
  for (const StripBatchRecord& band : result.batches) {
    std::cout << "  ζ=" << format_number(band.category.value()) << "  y=["
              << format_number(band.band_bottom) << ", "
              << format_number(band.band_top) << ")  rects:";
    for (const TaskId id : band.rects) {
      std::cout << ' ' << instance.rect(id).name;
    }
    std::cout << '\n';
  }

  std::cout << "\n"
            << render_strip(instance, result.packing, result.total_height);
  return 0;
}
