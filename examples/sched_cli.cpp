// sched_cli: schedule an instance loaded from a JSON file (or a built-in
// demo instance) with a chosen algorithm; print metrics and optionally a
// Gantt chart or CSV trace.
//
//   $ ./sched_cli --algo catbatch --procs 8 instance.json
//   $ ./sched_cli --demo --algo list-lpt --gantt
//   $ ./sched_cli instance.json --csv > trace.csv
//
// The JSON dialect is documented in src/instances/io.hpp; export an example
// with --emit-demo.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "analysis/metrics.hpp"
#include "instances/examples.hpp"
#include "instances/io.hpp"
#include "instances/stg.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/relaxed_catbatch.hpp"
#include "sim/engine.hpp"
#include "sim/svg.hpp"
#include "sim/trace.hpp"
#include "sim/validate.hpp"
#include "support/text.hpp"

namespace {

using namespace catbatch;

std::unique_ptr<OnlineScheduler> make_scheduler(const std::string& algo) {
  if (algo == "catbatch") return std::make_unique<CatBatchScheduler>();
  if (algo == "relaxed") return std::make_unique<RelaxedCatBatch>();
  const auto make_list = [](ListPriority priority) {
    return std::make_unique<ListScheduler>(
        ListSchedulerOptions{priority, false});
  };
  if (algo == "list-fifo") return make_list(ListPriority::Fifo);
  if (algo == "list-lpt") return make_list(ListPriority::LongestFirst);
  if (algo == "list-spt") return make_list(ListPriority::ShortestFirst);
  if (algo == "list-widest") return make_list(ListPriority::WidestFirst);
  if (algo == "list-crit") return make_list(ListPriority::SmallestCriticality);
  return nullptr;
}

int usage() {
  std::cerr
      << "usage: sched_cli [options] [instance.json|instance.stg]\n"
         "  --algo NAME    catbatch | relaxed | list-fifo | list-lpt |\n"
         "                 list-spt | list-widest | list-crit\n"
         "  --procs N      platform size (default: file's, else 8)\n"
         "  --gantt        print an ASCII Gantt chart\n"
         "  --svg FILE     write an SVG Gantt chart to FILE\n"
         "  --csv          print the schedule as CSV\n"
         "  --dot          print the instance in Graphviz DOT\n"
         "  --demo         use the paper's 11-task example instead of a file\n"
         "  --emit-demo    print the demo instance as JSON and exit\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string algo = "catbatch";
  std::string path;
  std::string svg_path;
  int procs = 0;
  bool gantt = false, csv = false, dot = false, demo = false,
       emit_demo = false;

  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg == "--algo" && k + 1 < argc) {
      algo = argv[++k];
    } else if (arg == "--procs" && k + 1 < argc) {
      procs = std::atoi(argv[++k]);
    } else if (arg == "--gantt") {
      gantt = true;
    } else if (arg == "--svg" && k + 1 < argc) {
      svg_path = argv[++k];
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--emit-demo") {
      emit_demo = true;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      return usage();
    }
  }

  try {
    TaskGraph graph;
    int file_procs = 0;
    if (emit_demo) {
      std::cout << to_json(make_paper_example(), 4);
      return 0;
    }
    if (demo) {
      graph = make_paper_example();
      file_procs = 4;
    } else if (!path.empty()) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      if (path.size() >= 4 && path.substr(path.size() - 4) == ".stg") {
        ParsedStg parsed = instance_from_stg(buffer.str());
        graph = std::move(parsed.graph);
        file_procs = parsed.procs;
      } else {
        ParsedInstance parsed = instance_from_json(buffer.str());
        graph = std::move(parsed.graph);
        file_procs = parsed.procs;
      }
    } else {
      return usage();
    }

    if (procs <= 0) procs = file_procs > 0 ? file_procs : 8;
    graph.validate(procs);

    if (dot) {
      std::cout << to_dot(graph);
      return 0;
    }

    const auto scheduler = make_scheduler(algo);
    if (!scheduler) return usage();

    const RunMetrics m = evaluate(graph, *scheduler, procs);
    std::cerr << "algorithm   : " << m.scheduler << "\n"
              << "tasks       : " << m.task_count << "\n"
              << "makespan    : " << format_number(m.makespan) << "\n"
              << "lower bound : " << format_number(m.lower_bound) << "\n"
              << "ratio       : " << format_number(m.ratio, 3) << "\n"
              << "utilization : " << format_number(m.utilization, 3) << "\n";

    // Re-run to get the schedule itself for trace output.
    if (gantt || csv || !svg_path.empty()) {
      const SimResult r = simulate(graph, *scheduler, procs);
      if (gantt) std::cout << ascii_gantt(graph, r.schedule, procs);
      if (csv) std::cout << schedule_to_csv(graph, r.schedule);
      if (!svg_path.empty()) {
        std::ofstream out(svg_path);
        if (!out) {
          std::cerr << "cannot write " << svg_path << "\n";
          return 1;
        }
        out << svg_gantt(graph, r.schedule, procs);
        std::cerr << "wrote " << svg_path << "\n";
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
