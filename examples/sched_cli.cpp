// sched_cli: schedule an instance loaded from a JSON file (or a built-in
// demo instance, or a random family) with any registered algorithm; print
// metrics and optionally a Gantt chart or CSV trace.
//
//   $ ./sched_cli --algo catbatch --procs 8 instance.json
//   $ ./sched_cli --demo --algo list-lpt --gantt
//   $ ./sched_cli --demo --algo divide-conquer      # offline algorithms too
//   $ ./sched_cli --list-algos
//   $ ./sched_cli --random layered --tasks 200 --trials 32 --jobs 8
//        --algo all --json sweep.json               # parallel multi-seed sweep
//
// Algorithms come from the central registry (src/sched/registry.hpp); the
// list below in --list-algos is generated, never hand-maintained. The JSON
// instance dialect is documented in src/instances/io.hpp; export an example
// with --emit-demo.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/experiment.hpp"
#include "analysis/json_report.hpp"
#include "analysis/metrics.hpp"
#include "analysis/flow_metrics.hpp"
#include "instances/examples.hpp"
#include "instances/io.hpp"
#include "instances/stg.hpp"
#include "instances/trace.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics_export.hpp"
#include "obs/observer.hpp"
#include "obs/summary.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "sim/svg.hpp"
#include "sim/trace.hpp"
#include "sim/validate.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/text.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace catbatch;

void list_algos(std::ostream& os) {
  TextTable table({"name", "model", "aliases", "summary"});
  for (const SchedulerEntry& entry : scheduler_registry()) {
    std::string aliases;
    for (const std::string& alias : entry.aliases) {
      if (!aliases.empty()) aliases += ", ";
      aliases += alias;
    }
    table.add_row({entry.name,
                   entry.kind == SchedulerKind::Online ? "online" : "offline",
                   aliases, entry.summary});
  }
  os << table.render();
}

void print_usage(std::ostream& os) {
  os << "usage: sched_cli [options] [instance.json|instance.stg]\n"
        "  --algo NAME    a registry algorithm (see --list-algos), or\n"
        "                 'all' for the standard comparison lineup\n"
        "  --list-algos   print every registered algorithm and exit\n"
        "  --procs N      platform size (default: file's, else 8)\n"
        "  --random FAM   use a random family instead of a file: one of\n"
        "                 layered | order-dag | series-parallel | fork-join\n"
        "                 | chains | out-tree | independent\n"
        "  --tasks N      size of --random instances (default 100)\n"
        "  --trials K     number of seeds to sweep (default 1)\n"
        "  --seed S       base seed for --random / --trials (default 1)\n"
        "  --jobs N       worker threads for multi-trial sweeps\n"
        "                 (default: CATBATCH_JOBS, else hardware)\n"
        "  --threads T    ingest-side engine parallelism for single runs\n"
        "                 (SoA build + criticality sweep); the schedule is\n"
        "                 bit-identical for any T (default 1)\n"
        "  --chunk C      block size of the fixed parallel partition\n"
        "                 (default 4096; only meaningful with --threads)\n"
        "  --json FILE    write the sweep report as JSON to FILE\n"
        "  --gantt        print an ASCII Gantt chart (single run)\n"
        "  --svg FILE     write an SVG Gantt chart to FILE (single run)\n"
        "  --csv          print the schedule as CSV (single run)\n"
        "  --dot          print the instance in Graphviz DOT\n"
        "  --demo         use the paper's 11-task example instead of a file\n"
        "  --emit-demo    print the demo instance as JSON and exit\n"
        "  --scenario FAM run the instance under a fault/dynamic-platform\n"
        "                 scenario family (single run): one of\n"
        "                 none | crash | sleep | noise (docs/SCENARIOS.md)\n"
        "  --scenario-seed S  seed of the scenario script (default 1)\n"
        "  --scenario-spec    print the scenario contract and exit\n"
        "  --trace FILE   replay a rigid-job workload trace (submit times,\n"
        "                 no precedence) through an online --algo; prints\n"
        "                 makespan plus flow/stretch metrics\n"
        "  --trace-format F  trace dialect: swf | batsim (default: batsim\n"
        "                 for .json files, else swf)\n"
        "  --trace-jobs N cap on the number of trace jobs replayed\n"
        "                 (default: all)\n"
        "  --trace-out FILE   write a Chrome trace_event JSON of the run\n"
        "                 (open in chrome://tracing or ui.perfetto.dev)\n"
        "  --metrics      print the engine/scheduler metrics summary\n"
        "                 (single run)\n"
        "  --metrics-json FILE  write the metrics snapshot as JSON\n"
        "  --help         print this message and exit\n"
        "exit codes: 0 success, 1 runtime failure, 2 usage error,\n"
        "            4 contract violation\n";
}

int usage() {
  print_usage(std::cerr);
  return kExitUsage;
}

/// Strict numeric-flag parsing (support/cli.hpp): rejects non-numeric
/// values and out-of-range counts at the flag, with a one-line error and a
/// nonzero exit, instead of letting atoi zeros or raw exceptions reach the
/// engine. Returns false after printing the error.
bool parse_flag(const std::string& flag, const char* text,
                std::int64_t min_value, std::int64_t max_value,
                std::int64_t& out) {
  return parse_flag_value("sched_cli", flag, text, min_value, max_value, out);
}

/// Lineup for a sweep: the standard registry lineup for "all", else the
/// one named algorithm. For fixed instances the graph is captured so
/// offline algorithms work too; for random families (`graph == nullptr`)
/// only online algorithms are constructible.
std::vector<NamedScheduler> sweep_lineup(const std::string& algo,
                                         const TaskGraph* graph) {
  if (algo == "all") return standard_scheduler_lineup();
  const SchedulerEntry* entry = find_scheduler(algo);
  if (entry == nullptr) return {};
  if (entry->kind == SchedulerKind::Offline && graph == nullptr) {
    std::cerr << "algorithm '" << entry->name
              << "' needs the full instance (offline); it cannot sweep a "
                 "random family\n";
    return {};
  }
  const std::string name = entry->name;
  if (graph != nullptr && entry->kind == SchedulerKind::Offline) {
    return {NamedScheduler{name, [name, graph] {
                             return make_scheduler(name, *graph);
                           }}};
  }
  return {NamedScheduler{name, [name] { return make_scheduler(name); }}};
}

}  // namespace

int main(int argc, char** argv) {
  std::string algo = "catbatch";
  std::string path, svg_path, json_path, family_label;
  std::string trace_path, metrics_json_path, scenario_family;
  std::string workload_trace_path, workload_trace_format;
  std::size_t workload_trace_jobs = 0;  // 0: replay every job
  int procs = 0;
  std::size_t tasks = 100, trials = 1;
  std::uint64_t seed = 1, scenario_seed = 1;
  int jobs = 0;
  ParallelOptions parallel;
  bool gantt = false, csv = false, dot = false, demo = false,
       emit_demo = false, show_metrics = false;

  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    std::int64_t value = 0;
    if (arg == "--algo" && k + 1 < argc) {
      algo = argv[++k];
    } else if (arg == "--procs" && k + 1 < argc) {
      if (!parse_flag(arg, argv[++k], 1, 1 << 20, value)) return kExitUsage;
      procs = static_cast<int>(value);
    } else if (arg == "--random" && k + 1 < argc) {
      family_label = argv[++k];
    } else if (arg == "--tasks" && k + 1 < argc) {
      if (!parse_flag(arg, argv[++k], 1, 100'000'000, value)) return kExitUsage;
      tasks = static_cast<std::size_t>(value);
    } else if (arg == "--trials" && k + 1 < argc) {
      if (!parse_flag(arg, argv[++k], 1, 100'000'000, value)) return kExitUsage;
      trials = static_cast<std::size_t>(value);
    } else if (arg == "--seed" && k + 1 < argc) {
      if (!parse_flag(arg, argv[++k], 0,
                      std::numeric_limits<std::int64_t>::max(), value)) {
        return kExitUsage;
      }
      seed = static_cast<std::uint64_t>(value);
    } else if (arg == "--jobs" && k + 1 < argc) {
      // 0 keeps the CATBATCH_JOBS / hardware default; negatives are junk.
      if (!parse_flag(arg, argv[++k], 0, 1 << 20, value)) return kExitUsage;
      jobs = static_cast<int>(value);
    } else if (arg == "--threads" && k + 1 < argc) {
      if (!parse_flag(arg, argv[++k], 1, 1 << 10, value)) return kExitUsage;
      parallel.threads = static_cast<int>(value);
    } else if (arg == "--chunk" && k + 1 < argc) {
      if (!parse_flag(arg, argv[++k], 1, 100'000'000, value)) {
        return kExitUsage;
      }
      parallel.chunk = static_cast<std::size_t>(value);
    } else if (arg == "--json" && k + 1 < argc) {
      json_path = argv[++k];
    } else if (arg == "--list-algos") {
      list_algos(std::cout);
      return kExitOk;
    } else if (arg == "--gantt") {
      gantt = true;
    } else if (arg == "--svg" && k + 1 < argc) {
      svg_path = argv[++k];
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--emit-demo") {
      emit_demo = true;
    } else if (arg == "--scenario" && k + 1 < argc) {
      scenario_family = argv[++k];
    } else if (arg == "--scenario-seed" && k + 1 < argc) {
      if (!parse_flag(arg, argv[++k], 0,
                      std::numeric_limits<std::int64_t>::max(), value)) {
        return kExitUsage;
      }
      scenario_seed = static_cast<std::uint64_t>(value);
    } else if (arg == "--scenario-spec") {
      std::cout << scenario_contract_text();
      return kExitOk;
    } else if (arg == "--trace" && k + 1 < argc) {
      workload_trace_path = argv[++k];
    } else if (arg == "--trace-format" && k + 1 < argc) {
      workload_trace_format = argv[++k];
    } else if (arg == "--trace-jobs" && k + 1 < argc) {
      if (!parse_flag(arg, argv[++k], 1, 100'000'000, value)) return kExitUsage;
      workload_trace_jobs = static_cast<std::size_t>(value);
    } else if (arg == "--trace-out" && k + 1 < argc) {
      trace_path = argv[++k];
    } else if (arg == "--metrics") {
      show_metrics = true;
    } else if (arg == "--metrics-json" && k + 1 < argc) {
      metrics_json_path = argv[++k];
    } else if (arg == "--help") {
      print_usage(std::cout);
      return kExitOk;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      return usage();
    }
  }

  if (!scenario_family.empty()) {
    const std::vector<std::string> known = scenario_family_names();
    if (std::find(known.begin(), known.end(), scenario_family) ==
        known.end()) {
      std::cerr << "sched_cli: --scenario family '" << scenario_family
                << "' is not one of none, crash, sleep, noise\n";
      return kExitUsage;
    }
    if (!family_label.empty() || trials > 1 || algo == "all") {
      std::cerr << "sched_cli: --scenario needs a single fixed-instance run "
                   "(no --random, --trials, or --algo all)\n";
      return kExitUsage;
    }
  }

  try {
    if (emit_demo) {
      std::cout << to_json(make_paper_example(), 4);
      return kExitOk;
    }

    // ---- Workload-trace replay mode (docs/BENCHMARKS.md) --------------
    if (!workload_trace_path.empty()) {
      std::string format = workload_trace_format;
      if (format.empty()) {
        const bool json = workload_trace_path.size() >= 5 &&
                          workload_trace_path.substr(
                              workload_trace_path.size() - 5) == ".json";
        format = json ? "batsim" : "swf";
      }
      if (format != "swf" && format != "batsim") {
        std::cerr << "sched_cli: --trace-format '" << format
                  << "' is not one of swf, batsim\n";
        return kExitUsage;
      }
      const SchedulerEntry* entry = find_scheduler(algo);
      if (entry == nullptr || entry->kind != SchedulerKind::Online) {
        std::cerr << "sched_cli: --trace needs a single online algorithm "
                     "(see --list-algos)\n";
        return kExitUsage;
      }
      std::ifstream in(workload_trace_path);
      if (!in) {
        std::cerr << "cannot open " << workload_trace_path << "\n";
        return kExitRuntime;
      }
      TraceWorkload trace;
      if (format == "swf") {
        trace = parse_swf(in);
      } else {
        std::ostringstream buffer;
        buffer << in.rdbuf();
        trace = parse_batsim_json(buffer.str());
      }
      if (workload_trace_jobs > 0 && workload_trace_jobs < trace.size()) {
        trace.submit.resize(workload_trace_jobs);
        trace.run.resize(workload_trace_jobs);
        trace.walltime.resize(workload_trace_jobs);
        trace.procs.resize(workload_trace_jobs);
        if (!trace.names.empty()) trace.names.resize(workload_trace_jobs);
      }
      if (procs <= 0) procs = trace.max_procs > 0 ? trace.max_procs : 8;
      auto scheduler = make_scheduler(entry->name);
      const SimResult r = replay_trace(trace, *scheduler, procs);
      const FlowMetrics flow = compute_flow_metrics(
          std::span<const Time>(trace.run.data(), trace.run.size()), r);
      Time area = 0.0;
      for (std::size_t i = 0; i < trace.size(); ++i) {
        area += trace.run[i] *
                static_cast<Time>(std::min(trace.procs[i], procs));
      }
      const double utilization =
          r.makespan > 0.0
              ? static_cast<double>(area) /
                    (static_cast<double>(r.makespan) * procs)
              : 0.0;
      std::cerr << "algorithm   : " << entry->name << "\n"
                << "trace       : " << workload_trace_path << " (" << format
                << ")\n"
                << "jobs        : " << trace.size() << " (+" << trace.dropped
                << " dropped)\n"
                << "procs       : " << procs << "\n"
                << "makespan    : " << format_number(r.makespan) << "\n"
                << "utilization : " << format_number(utilization, 3) << "\n"
                << "mean flow   : " << format_number(flow.mean_flow, 3)
                << "\n"
                << "max flow    : " << format_number(flow.max_flow, 3) << "\n"
                << "mean stretch: " << format_number(flow.mean_stretch, 3)
                << "\n"
                << "max stretch : " << format_number(flow.max_stretch, 3)
                << "\n"
                << "decisions   : " << r.stats.decision_points << "\n";
      return kExitOk;
    }

    // ---- Random-family sweep mode -------------------------------------
    if (!family_label.empty()) {
      if (procs <= 0) procs = 8;
      const InstanceFamily family =
          standard_family(family_label, tasks, procs);
      const auto lineup = sweep_lineup(algo, nullptr);
      if (lineup.empty()) return usage();

      SweepOptions options;
      options.procs = procs;
      options.trials = trials;
      options.base_seed = seed;
      options.jobs = ThreadPool::resolve_jobs(jobs);
      options.keep_runs = !json_path.empty();
      const std::vector<FamilySweep> grid = sweep_grid(
          std::span<const InstanceFamily>(&family, 1), lineup, options);
      const FamilySweep& fs = grid.front();

      std::cerr << "family      : " << fs.family << " (~" << tasks
                << " tasks, P = " << procs << ")\n"
                << "trials      : " << trials << " (seeds " << seed << ".."
                << seed + trials - 1 << ")\n"
                << "jobs        : " << options.jobs << "\n"
                << "wall        : " << format_number(fs.wall_ms, 1)
                << " ms\n";
      TextTable table({"scheduler", "runs", "max T/Lb", "mean T/Lb",
                       "max ratio/bound", "total ms"});
      for (const RatioAggregate& agg : fs.aggregates) {
        table.add_row({agg.scheduler, std::to_string(agg.runs),
                       format_number(agg.max_ratio, 3),
                       format_number(agg.mean_ratio, 3),
                       format_number(agg.max_theorem1_margin, 3),
                       format_number(agg.total_wall_ms, 1)});
      }
      std::cout << table.render();

      if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
          std::cerr << "cannot write " << json_path << "\n";
          return kExitRuntime;
        }
        out << sweep_report_json("sched_cli", options, grid, fs.wall_ms)
            << "\n";
        std::cerr << "wrote " << json_path << "\n";
      }
      return kExitOk;
    }

    // ---- File / demo instance -----------------------------------------
    TaskGraph graph;
    int file_procs = 0;
    if (demo) {
      graph = make_paper_example();
      file_procs = 4;
    } else if (!path.empty()) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "cannot open " << path << "\n";
        return kExitRuntime;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      if (path.size() >= 4 && path.substr(path.size() - 4) == ".stg") {
        ParsedStg parsed = instance_from_stg(buffer.str());
        graph = std::move(parsed.graph);
        file_procs = parsed.procs;
      } else {
        ParsedInstance parsed = instance_from_json(buffer.str());
        graph = std::move(parsed.graph);
        file_procs = parsed.procs;
      }
    } else {
      return usage();
    }

    if (procs <= 0) procs = file_procs > 0 ? file_procs : 8;
    graph.validate(procs);

    if (dot) {
      std::cout << to_dot(graph);
      return kExitOk;
    }

    // ---- Scenario run (fault/dynamic-platform families) ---------------
    if (!scenario_family.empty()) {
      if (find_scheduler(algo) == nullptr) {
        std::cerr << "unknown algorithm '" << algo
                  << "' (see --list-algos)\n";
        return usage();
      }
      // Scheduler-independent horizon: the area bound plus the longest
      // task, so the script does not depend on the algorithm under test.
      const Time horizon =
          graph.total_area() / static_cast<Time>(procs) + graph.max_work();
      const Scenario scenario =
          make_scenario(scenario_family, procs, horizon, scenario_seed);
      ScenarioRunOptions scenario_options;
      scenario_options.mode = ScheduleMode::Identity;
      const ScenarioOutcome outcome =
          run_scenario(graph, find_scheduler(algo)->name, procs, scenario,
                       scenario_options);
      check_scenario_feasible(outcome.result, graph, scenario, procs);
      std::cerr << "algorithm   : " << find_scheduler(algo)->name << "\n"
                << "scenario    : " << scenario_family << " (seed "
                << scenario_seed << ")\n"
                << "tasks       : " << graph.size() << "\n"
                << "makespan    : "
                << format_number(outcome.metrics.realized_makespan) << "\n"
                << "baseline    : "
                << format_number(outcome.metrics.baseline_makespan) << "\n"
                << "degradation : "
                << format_number(outcome.metrics.degradation, 3) << "\n"
                << "lost work   : "
                << format_number(outcome.metrics.lost_work_ratio, 3) << "\n"
                << "recovery    : "
                << format_number(outcome.metrics.recovery_latency, 3) << "\n"
                << "kills       : " << outcome.metrics.kills << "\n"
                << "capacity ev : " << outcome.metrics.capacity_changes
                << "\n";
      if (gantt) std::cout << ascii_gantt(graph, outcome.result.schedule, procs);
      if (csv) std::cout << schedule_to_csv(graph, outcome.result.schedule);
      if (!svg_path.empty()) {
        std::ofstream out(svg_path);
        if (!out) {
          std::cerr << "cannot write " << svg_path << "\n";
          return kExitRuntime;
        }
        out << svg_gantt(graph, outcome.result.schedule, procs);
        std::cerr << "wrote " << svg_path << "\n";
      }
      return kExitOk;
    }

    // Multi-trial timing sweep over a fixed instance: wrap the graph in a
    // constant family (offline algorithms work — the graph is captured).
    if (trials > 1 || algo == "all") {
      const InstanceFamily constant{
          demo ? "paper-example" : path,
          [&graph](Rng&) { return graph; }};
      const auto lineup = sweep_lineup(algo, &graph);
      if (lineup.empty()) return usage();

      SweepOptions options;
      options.procs = procs;
      options.trials = trials;
      options.base_seed = seed;
      options.jobs = ThreadPool::resolve_jobs(jobs);
      options.keep_runs = !json_path.empty();
      const std::vector<FamilySweep> grid = sweep_grid(
          std::span<const InstanceFamily>(&constant, 1), lineup, options);
      const FamilySweep& fs = grid.front();

      std::cerr << "instance    : " << fs.family << " (" << graph.size()
                << " tasks, P = " << procs << ")\n"
                << "trials      : " << trials << "\n"
                << "jobs        : " << options.jobs << "\n"
                << "wall        : " << format_number(fs.wall_ms, 1)
                << " ms\n";
      TextTable table({"scheduler", "runs", "ratio", "total ms"});
      for (const RatioAggregate& agg : fs.aggregates) {
        table.add_row({agg.scheduler, std::to_string(agg.runs),
                       format_number(agg.mean_ratio, 3),
                       format_number(agg.total_wall_ms, 1)});
      }
      std::cout << table.render();
      if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
          std::cerr << "cannot write " << json_path << "\n";
          return kExitRuntime;
        }
        out << sweep_report_json("sched_cli", options, grid, fs.wall_ms)
            << "\n";
        std::cerr << "wrote " << json_path << "\n";
      }
      return kExitOk;
    }

    auto scheduler = make_scheduler(algo, graph);
    if (!scheduler) {
      std::cerr << "unknown algorithm '" << algo
                << "' (see --list-algos)\n";
      return usage();
    }

    // Any observability flag turns on the full sink set: decision-time
    // metrics around the scheduler, engine lifecycle events in the tracer.
    const bool observed =
        show_metrics || !trace_path.empty() || !metrics_json_path.empty();
    MetricsRegistry metrics_registry;
    EventTracer tracer;
    SimOptions sim_options;
    sim_options.parallel = parallel;
    std::unique_ptr<EngineObserver> observer;
    if (observed) {
      scheduler = instrument_scheduler(std::move(scheduler), metrics_registry);
      observer = std::make_unique<EngineObserver>(&tracer, &metrics_registry);
      sim_options.observer = observer.get();
    }

    const RunMetrics m = evaluate(graph, *scheduler, procs, sim_options);
    std::cerr << "algorithm   : " << m.scheduler << "\n"
              << "tasks       : " << m.task_count << "\n"
              << "makespan    : " << format_number(m.makespan) << "\n"
              << "lower bound : " << format_number(m.lower_bound) << "\n"
              << "ratio       : " << format_number(m.ratio, 3) << "\n"
              << "utilization : " << format_number(m.utilization, 3) << "\n";

    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        std::cerr << "cannot write " << trace_path << "\n";
        return kExitRuntime;
      }
      ChromeTraceOptions trace_options;
      trace_options.graph = &graph;
      out << chrome_trace_json(tracer, trace_options) << "\n";
      std::cerr << "wrote " << trace_path << "\n";
    }
    if (show_metrics) std::cout << obs_summary(&metrics_registry, &tracer);
    if (!metrics_json_path.empty()) {
      std::ofstream out(metrics_json_path);
      if (!out) {
        std::cerr << "cannot write " << metrics_json_path << "\n";
        return kExitRuntime;
      }
      out << metrics_json(metrics_registry) << "\n";
      std::cerr << "wrote " << metrics_json_path << "\n";
    }

    // Re-run to get the schedule itself for trace output.
    if (gantt || csv || !svg_path.empty()) {
      const SimResult r = simulate(graph, *scheduler, procs);
      if (gantt) std::cout << ascii_gantt(graph, r.schedule, procs);
      if (csv) std::cout << schedule_to_csv(graph, r.schedule);
      if (!svg_path.empty()) {
        std::ofstream out(svg_path);
        if (!out) {
          std::cerr << "cannot write " << svg_path << "\n";
          return kExitRuntime;
        }
        out << svg_gantt(graph, r.schedule, procs);
        std::cerr << "wrote " << svg_path << "\n";
      }
    }
    return kExitOk;
  } catch (const ContractViolation& e) {
    std::cerr << "error: contract violation: " << e.what() << "\n";
    return kExitContract;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitRuntime;
  }
}
