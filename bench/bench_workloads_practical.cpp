// E12 — the conclusion's conjecture: strict CatBatch is near-optimal in the
// worst case but practically slow (batch barriers idle processors), while
// the category-priority relaxation recovers list-scheduling performance.
// Measured on the HPC workload DAGs.
//
// The (workload x scheduler) grid fans out across --jobs workers (graphs
// are built once and shared read-only); tables render in fixed order from
// the collected slots, so output is independent of the job count. Emits
// BENCH_workloads_practical.json.
#include <chrono>
#include <iostream>

#include "analysis/json_report.hpp"
#include "analysis/metrics.hpp"
#include "analysis/report.hpp"
#include "instances/workloads.hpp"
#include "support/table.hpp"
#include "support/text.hpp"
#include "support/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace catbatch;
  print_experiment_header(
      std::cout, "E12",
      "Practical workloads — strict CatBatch vs relaxed vs list family");

  const int procs = 16;
  const int jobs = bench_jobs(argc, argv);
  std::cout << "jobs: " << jobs << "\n";
  KernelCosts costs;
  costs.jitter = 0.15;

  struct Workload {
    std::string name;
    TaskGraph graph;
  };
  const Workload workloads[] = {
      {"cholesky-12", cholesky_dag(12, costs)},
      {"lu-10", lu_dag(10, costs)},
      {"stencil-32x32", stencil_dag(32, 32, 0.5, 1)},
      {"fft-2^7", fft_dag(7, 0.25, 1)},
      {"mapreduce-128/16", map_reduce_dag(128, 16, 1.0, 2.0, 1, 2)},
      {"montage-24", montage_dag(24)},
  };
  constexpr std::size_t kWorkloads = std::size(workloads);

  const auto lineup = standard_scheduler_lineup();
  struct Slot {
    RunMetrics metrics;
    double wall_ms = 0.0;
  };
  std::vector<Slot> slots(kWorkloads * lineup.size());

  const auto t0 = std::chrono::steady_clock::now();
  parallel_for(jobs, slots.size(), [&](std::size_t flat) {
    const std::size_t w = flat / lineup.size();
    const std::size_t s = flat % lineup.size();
    const auto run_t0 = std::chrono::steady_clock::now();
    const auto scheduler = lineup[s].make();
    Slot& slot = slots[flat];
    slot.metrics = evaluate(workloads[w].graph, *scheduler, procs);
    slot.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - run_t0)
                       .count();
  });
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  std::vector<FamilySweep> report;
  for (std::size_t w = 0; w < kWorkloads; ++w) {
    std::cout << "\n" << workloads[w].name << " ("
              << workloads[w].graph.size() << " tasks):\n";
    TextTable table = make_metrics_table();
    FamilySweep fs;
    fs.family = workloads[w].name;
    for (std::size_t s = 0; s < lineup.size(); ++s) {
      const Slot& slot = slots[w * lineup.size() + s];
      add_metrics_row(table, slot.metrics);
      RatioAggregate agg;
      agg.scheduler = lineup[s].label;
      agg.runs = 1;
      agg.max_ratio = agg.mean_ratio = slot.metrics.ratio;
      if (slot.metrics.theorem1_bound > 0.0) {
        agg.max_theorem1_margin =
            slot.metrics.ratio / slot.metrics.theorem1_bound;
      }
      if (slot.metrics.theorem2_bound > 0.0) {
        agg.max_theorem2_margin =
            slot.metrics.ratio / slot.metrics.theorem2_bound;
      }
      agg.total_wall_ms = slot.wall_ms;
      fs.wall_ms += slot.wall_ms;
      fs.aggregates.push_back(std::move(agg));
    }
    std::cout << table.render();
    report.push_back(std::move(fs));
  }

  SweepOptions meta;
  meta.procs = procs;
  meta.trials = 1;
  meta.base_seed = 0;
  meta.jobs = jobs;
  const std::string path = write_bench_report(
      "workloads_practical",
      sweep_report_json("workloads_practical", meta, report, wall_ms));
  std::cout << "\nwrote " << path << "\n";

  std::cout << "\nShape check (paper, Section 7): on benign DAGs the greedy "
               "schedulers and relaxed-catbatch cluster near the lower "
               "bound; strict catbatch trails because a batch must complete "
               "before the next starts — the price of its worst-case "
               "guarantee. All ratios remain under log2(n)+3.\n";
  return 0;
}
