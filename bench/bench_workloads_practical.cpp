// E12 — the conclusion's conjecture: strict CatBatch is near-optimal in the
// worst case but practically slow (batch barriers idle processors), while
// the category-priority relaxation recovers list-scheduling performance.
// Measured on the HPC workload DAGs.
#include <iostream>

#include "analysis/metrics.hpp"
#include "analysis/report.hpp"
#include "instances/workloads.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace catbatch;
  print_experiment_header(
      std::cout, "E12",
      "Practical workloads — strict CatBatch vs relaxed vs list family");

  const int procs = 16;
  KernelCosts costs;
  costs.jitter = 0.15;

  struct Workload {
    std::string name;
    TaskGraph graph;
  };
  const Workload workloads[] = {
      {"cholesky-12", cholesky_dag(12, costs)},
      {"lu-10", lu_dag(10, costs)},
      {"stencil-32x32", stencil_dag(32, 32, 0.5, 1)},
      {"fft-2^7", fft_dag(7, 0.25, 1)},
      {"mapreduce-128/16", map_reduce_dag(128, 16, 1.0, 2.0, 1, 2)},
      {"montage-24", montage_dag(24)},
  };

  for (const Workload& w : workloads) {
    std::cout << "\n" << w.name << " (" << w.graph.size() << " tasks):\n";
    TextTable table = make_metrics_table();
    for (const NamedScheduler& named : standard_scheduler_lineup()) {
      const auto scheduler = named.make();
      add_metrics_row(table, evaluate(w.graph, *scheduler, procs));
    }
    std::cout << table.render();
  }

  std::cout << "\nShape check (paper, Section 7): on benign DAGs the greedy "
               "schedulers and relaxed-catbatch cluster near the lower "
               "bound; strict catbatch trails because a batch must complete "
               "before the next starts — the price of its worst-case "
               "guarantee. All ratios remain under log2(n)+3.\n";
  return 0;
}
