// E1 — Figure 1: the introductory instance. Any ASAP heuristic pays
// P(1+ε) while the optimum is 1+2Pε; CatBatch lands within O(log P) of the
// optimum by deliberately delaying the decoy tasks.
//
// Regenerates the figure as a table over a sweep of P, with the measured
// makespans of the ASAP family, CatBatch, and the explicit optimal schedule
// (validated).
#include <iostream>

#include "analysis/report.hpp"
#include "core/bounds.hpp"
#include "core/lmatrix.hpp"
#include "instances/examples.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace catbatch;
  print_experiment_header(std::cout, "E1",
                          "Figure 1 — ASAP pathology vs optimal vs CatBatch");

  TextTable table({"P", "n", "ASAP (any list)", "CatBatch", "Optimal",
                   "ASAP/Opt", "CatBatch/Opt", "log2(n)+3"});
  for (const int P : {4, 8, 16, 32, 64, 128, 256}) {
    const IntroInstance intro = make_intro_instance(P);

    ListScheduler asap;
    const SimResult asap_run = simulate(intro.graph, asap, P);
    require_valid_schedule(intro.graph, asap_run.schedule, P);

    CatBatchScheduler cat;
    const SimResult cat_run = simulate(intro.graph, cat, P);
    require_valid_schedule(intro.graph, cat_run.schedule, P);

    const Schedule opt = intro_optimal_schedule(intro);
    require_valid_schedule(intro.graph, opt, P);
    const Time opt_makespan = opt.makespan();

    table.add_row(
        {std::to_string(P), std::to_string(intro.graph.size()),
         format_number(asap_run.makespan, 3),
         format_number(cat_run.makespan, 3), format_number(opt_makespan, 3),
         format_number(static_cast<double>(asap_run.makespan / opt_makespan),
                       2),
         format_number(static_cast<double>(cat_run.makespan / opt_makespan),
                       2),
         format_number(theorem1_bound(intro.graph.size()), 2)});
  }
  std::cout << table.render();
  std::cout << "\nShape check (paper, Section 1): ASAP/Opt grows linearly in "
               "P (≈ n/3); CatBatch/Opt stays logarithmic, under its "
               "log2(n)+3 guarantee.\n";
  return 0;
}
