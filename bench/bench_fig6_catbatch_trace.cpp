// E5 — Figure 6: the CatBatch execution of the running example on P = 4
// processors — batch order, the ready tasks at the start of each batch, the
// batch boundaries, the Gantt chart, and the makespan 15.2.
#include <iostream>

#include "analysis/batch_stats.hpp"
#include "analysis/report.hpp"
#include "core/bounds.hpp"
#include "instances/examples.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "sim/validate.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace catbatch;
  print_experiment_header(std::cout, "E5",
                          "Figure 6 — CatBatch on the running example, P=4");

  const TaskGraph g = make_paper_example();
  CatBatchScheduler sched;
  const SimResult r = simulate(g, sched, 4);
  require_valid_schedule(g, r.schedule, 4);

  TextTable table({"batch", "zeta", "start", "end", "tasks"});
  std::size_t k = 0;
  for (const BatchRecord& batch : sched.batch_history()) {
    std::string members;
    for (const TaskId id : batch.tasks) {
      if (!members.empty()) members += ", ";
      members += g.task(id).name;
    }
    table.add_row({std::to_string(++k),
                   format_number(batch.category.value(), 4),
                   format_number(batch.started, 4),
                   format_number(batch.finished, 4), members});
  }
  std::cout << table.render();

  std::cout << "\nGantt (P=4):\n"
            << ascii_gantt(g, r.schedule, 4) << "\n";
  std::cout << "makespan    : " << format_number(r.makespan, 4)
            << "   (paper: 15.2)\n";
  std::cout << "lower bound : " << format_number(makespan_lower_bound(g, 4), 4)
            << "\n";
  std::cout << "batch ends  : paper shows 2, 5, 5.8, 11.8, 14.4, 15.2\n";

  std::cout << "\nLemma 7 decomposition (T = Σ T(B_ζ), each within "
               "2A/P + L_ζ):\n";
  const CatBatchDecomposition decomposition =
      decompose_batches(g, sched.batch_history(), 4);
  std::cout << decomposition_table(decomposition).render();
  return 0;
}
