// E3 — Figure 4: the non-empty categories of the running example with
// their lengths L_ζ and members.
#include <iostream>
#include <map>

#include "analysis/report.hpp"
#include "core/category.hpp"
#include "core/criticality.hpp"
#include "core/lmatrix.hpp"
#include "instances/examples.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace catbatch;
  print_experiment_header(
      std::cout, "E3", "Figure 4 — categories and their lengths (C = 6.8)");

  const TaskGraph g = make_paper_example();
  const Time critical = critical_path_length(g);
  const auto cats = compute_categories(g);

  std::map<Time, std::pair<Category, std::string>> by_zeta;
  for (TaskId id = 0; id < g.size(); ++id) {
    auto& slot = by_zeta[cats[id].value()];
    slot.first = cats[id];
    if (!slot.second.empty()) slot.second += ", ";
    slot.second += g.task(id).name;
  }

  TextTable table({"zeta", "chi", "lambda", "L_zeta", "tasks"});
  for (const auto& [zeta, entry] : by_zeta) {
    const auto& [cat, members] = entry;
    table.add_row({format_number(zeta, 4), std::to_string(cat.power_level),
                   std::to_string(cat.longitude),
                   format_number(category_length(cat, critical), 4),
                   members});
  }
  std::cout << table.render();
  std::cout << "\nPaper reference (Figure 4): ζ=1 L=2 {B}; ζ=2 L=4 {C,D}; "
               "ζ=3.5 L=1 {F,G}; ζ=4 L=6.8 {A,E,I}; ζ=5 L=2 {H,K}; ζ=6.5 "
               "L=0.8 {J}.\n";
  return 0;
}
