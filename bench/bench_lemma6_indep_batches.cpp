// E10 — Lemma 6 and Section 2.3: scheduling a batch of independent rigid
// tasks. Compares the greedy routine of Algorithm 2 with the shelf
// algorithms NFDH and FFDH against the 2A/P + t_max bound and the area
// lower bound.
#include <algorithm>
#include <iostream>
#include <vector>

#include "analysis/report.hpp"
#include "instances/random_dags.hpp"
#include "sched/shelf.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace catbatch;
  print_experiment_header(
      std::cout, "E10",
      "Lemma 6 — independent rigid batches: greedy vs NFDH vs FFDH");

  const int procs = 32;
  TextTable table({"mix", "n", "Lb (area/cp)", "greedy", "nfdh", "ffdh",
                   "2A/P + tmax", "greedy/Lb"});

  struct Mix {
    const char* name;
    WorkDistribution::Law law;
    ProcDistribution::Law procs_law;
  };
  const Mix mixes[] = {
      {"narrow-uniform", WorkDistribution::Law::Uniform,
       ProcDistribution::Law::MostlyNarrow},
      {"narrow-heavytail", WorkDistribution::Law::BoundedPareto,
       ProcDistribution::Law::MostlyNarrow},
      {"wide-uniform", WorkDistribution::Law::Uniform,
       ProcDistribution::Law::Uniform},
      {"wide-heavytail", WorkDistribution::Law::BoundedPareto,
       ProcDistribution::Law::Uniform},
      {"pow2-loguniform", WorkDistribution::Law::LogUniform,
       ProcDistribution::Law::PowerOfTwo},
  };

  for (const Mix& mix : mixes) {
    RandomTaskParams params;
    params.work.law = mix.law;
    params.work.min_work = 0.25;
    params.work.max_work = 32.0;
    params.procs.law = mix.procs_law;
    params.procs.max_procs = procs;

    Rng rng(2025);
    const std::size_t n = 400;
    const TaskGraph g = random_independent(rng, n, params);
    std::vector<Task> tasks;
    tasks.reserve(g.size());
    for (TaskId id = 0; id < g.size(); ++id) tasks.push_back(g.task(id));

    const Time area = g.total_area();
    const Time tmax = g.max_work();
    const Time lb = std::max(area / procs, tmax);
    const Time greedy = greedy_independent(tasks, procs).makespan();
    const Time nfdh = pack_nfdh(tasks, procs).total_height;
    const Time ffdh = pack_ffdh(tasks, procs).total_height;
    const Time lemma6 = 2.0 * area / procs + tmax;

    table.add_row({mix.name, std::to_string(n), format_number(lb, 2),
                   format_number(greedy, 2), format_number(nfdh, 2),
                   format_number(ffdh, 2), format_number(lemma6, 2),
                   format_number(static_cast<double>(greedy / lb), 3)});
  }
  std::cout << table.render();
  std::cout << "\nShape check: greedy <= 2A/P + tmax on every mix (Lemma 6); "
               "FFDH <= NFDH; greedy typically beats both shelf algorithms "
               "because it is not constrained to contiguous shelves "
               "(Section 2.3's 2-approximation vs 2.7/3).\n";
  return 0;
}
