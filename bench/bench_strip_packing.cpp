// E13 — Remark 1: CatBatch adapted to online strip packing with precedence
// constraints, using NFDH per category band. Reports height vs the lower
// bound and the analytic 2A + ΣL_ζ guarantee across instance shapes.
#include <iostream>

#include "analysis/report.hpp"
#include "strip/catbatch_strip.hpp"
#include "strip/strip_packers.hpp"
#include "strip/strip_validate.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

namespace {

using namespace catbatch;

StripInstance random_strip(Rng& rng, std::size_t count, double edge_prob,
                           int width_grid) {
  StripInstance s;
  for (std::size_t k = 0; k < count; ++k) {
    const double width =
        static_cast<double>(rng.uniform_int(1, width_grid)) / width_grid;
    const double height =
        static_cast<double>(rng.uniform_int(1, 256)) * 0x1.0p-5;
    s.add_rect(width, height);
  }
  for (TaskId i = 0; i < count; ++i) {
    for (TaskId j = i + 1; j < count; ++j) {
      if (rng.bernoulli(edge_prob)) s.add_edge(i, j);
    }
  }
  return s;
}

StripInstance chain_heavy(Rng& rng, std::size_t chains, std::size_t length) {
  StripInstance s;
  for (std::size_t c = 0; c < chains; ++c) {
    TaskId prev = kInvalidTask;
    for (std::size_t k = 0; k < length; ++k) {
      const double width =
          static_cast<double>(rng.uniform_int(1, 16)) / 16.0;
      const double height =
          static_cast<double>(rng.uniform_int(1, 64)) * 0x1.0p-4;
      const TaskId id = s.add_rect(width, height);
      if (prev != kInvalidTask) s.add_edge(prev, id);
      prev = id;
    }
  }
  return s;
}

}  // namespace

int main() {
  print_experiment_header(
      std::cout, "E13",
      "Remark 1 — online strip packing with precedence (CatBatch + NFDH)");

  TextTable table({"instance", "rects", "Lb", "catbatch-strip height",
                   "2A + sum L", "height/Lb", "bands"});
  Rng rng(7);

  struct Case {
    std::string name;
    StripInstance instance;
  };
  Case cases[] = {
      {"sparse-dag-100", random_strip(rng, 100, 0.02, 32)},
      {"dense-dag-100", random_strip(rng, 100, 0.10, 32)},
      {"independent-200", random_strip(rng, 200, 0.0, 16)},
      {"chains-8x12", chain_heavy(rng, 8, 12)},
      {"wide-rects-80", random_strip(rng, 80, 0.03, 4)},
  };

  for (Case& c : cases) {
    const CatBatchStripResult result = catbatch_strip_pack(c.instance);
    require_valid_strip_packing(c.instance, result.packing);
    const Time lb = c.instance.height_lower_bound();
    table.add_row(
        {c.name, std::to_string(c.instance.size()), format_number(lb, 3),
         format_number(result.total_height, 3),
         format_number(catbatch_strip_bound(c.instance), 3),
         format_number(static_cast<double>(result.total_height / lb), 3),
         std::to_string(result.batches.size())});
  }
  std::cout << table.render();
  std::cout << "\nShape check: heights always within the 2A + ΣL_ζ "
               "guarantee; ratios mirror the rigid-task case since the "
               "category machinery is identical (Remark 1).\n";

  // Packer shoot-out on independent rectangles (§2.3: NFDH 3-approx, FFDH
  // 2.7-approx, Bottom-Left 3-approx but interlocking).
  std::cout << "\nIndependent-rectangle packers (width grid, 150 rects):\n";
  TextTable packers({"width grid", "area LB", "nfdh", "ffdh",
                     "bottom-left"});
  for (const int grid : {4, 8, 32}) {
    std::vector<Rect> rects;
    Rng prng(static_cast<std::uint64_t>(grid));
    double area = 0.0;
    for (int k = 0; k < 150; ++k) {
      const double width =
          static_cast<double>(prng.uniform_int(1, grid)) / grid;
      const double height =
          static_cast<double>(prng.uniform_int(1, 128)) * 0x1.0p-4;
      rects.push_back(Rect{width, height, ""});
      area += rects.back().area();
    }
    packers.add_row({std::to_string(grid), format_number(area, 2),
                     format_number(strip_nfdh(rects).total_height, 2),
                     format_number(strip_ffdh(rects).total_height, 2),
                     format_number(strip_bottom_left(rects).total_height,
                                   2)});
  }
  std::cout << packers.render();
  return 0;
}
