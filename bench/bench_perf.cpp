// E14 — engineering throughput: google-benchmark microbenchmarks for the
// hot paths (category computation, criticality pass, engine event loop,
// full CatBatch and list-scheduling simulations), plus the parallel sweep
// engine's scaling curve (BM_ParallelSweep/jobs:N — real time per grid).
#include <benchmark/benchmark.h>

#include "analysis/experiment.hpp"
#include "core/category.hpp"
#include "core/criticality.hpp"
#include "instances/random_dags.hpp"
#include "instances/workloads.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"

namespace {

using namespace catbatch;

TaskGraph benchmark_graph(std::size_t n) {
  Rng rng(12345);
  RandomTaskParams params;
  params.procs.max_procs = 32;
  return random_layered_dag(rng, n, std::max<std::size_t>(2, n / 16), params);
}

void BM_ComputeCategory(benchmark::State& state) {
  Rng rng(1);
  std::vector<Criticality> intervals;
  for (int k = 0; k < 1024; ++k) {
    const double s = static_cast<double>(rng.uniform_int(0, 1 << 20)) *
                     0x1.0p-10;
    const double t =
        static_cast<double>(rng.uniform_int(1, 1 << 12)) * 0x1.0p-10;
    intervals.push_back(Criticality{s, s + t});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_category(intervals[i]));
    i = (i + 1) & 1023;
  }
}
BENCHMARK(BM_ComputeCategory);

void BM_CriticalityPass(benchmark::State& state) {
  const TaskGraph g = benchmark_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_criticalities(g));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CriticalityPass)->Arg(1024)->Arg(16384);

void BM_SimulateCatBatch(benchmark::State& state) {
  const TaskGraph g = benchmark_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    CatBatchScheduler sched;
    benchmark::DoNotOptimize(simulate(g, sched, 32).makespan);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateCatBatch)->Arg(256)->Arg(2048)->Arg(16384);

void BM_SimulateListFifo(benchmark::State& state) {
  const TaskGraph g = benchmark_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ListScheduler sched;
    benchmark::DoNotOptimize(simulate(g, sched, 32).makespan);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateListFifo)->Arg(256)->Arg(2048)->Arg(16384);

// Counting-mode twins of the simulate benchmarks: same instances, but the
// engine tracks only processor counts (ScheduleMode::Counting) — the sweep
// configuration. The gap to the identity-mode numbers above is the cost of
// concrete processor bookkeeping.
void BM_SimulateCatBatchCounting(benchmark::State& state) {
  const TaskGraph g = benchmark_graph(static_cast<std::size_t>(state.range(0)));
  const SimOptions options{ScheduleMode::Counting};
  for (auto _ : state) {
    CatBatchScheduler sched;
    benchmark::DoNotOptimize(simulate(g, sched, 32, options).makespan);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateCatBatchCounting)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SimulateListFifoCounting(benchmark::State& state) {
  const TaskGraph g = benchmark_graph(static_cast<std::size_t>(state.range(0)));
  const SimOptions options{ScheduleMode::Counting};
  for (auto _ : state) {
    ListScheduler sched;
    benchmark::DoNotOptimize(simulate(g, sched, 32, options).makespan);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateListFifoCounting)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SimulateCholesky(benchmark::State& state) {
  const TaskGraph g = cholesky_dag(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    CatBatchScheduler sched;
    benchmark::DoNotOptimize(simulate(g, sched, 16).makespan);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.size()));
}
BENCHMARK(BM_SimulateCholesky)->Arg(8)->Arg(16);

// Scaling of the experiment engine itself: the same (family x scheduler x
// seed) grid at increasing worker counts. Aggregates are bit-identical
// across arms; only the real time should drop.
void BM_ParallelSweep(benchmark::State& state) {
  const auto families = standard_families(256, 16);
  const auto lineup = standard_scheduler_lineup();
  SweepOptions options;
  options.procs = 16;
  options.trials = 4;
  options.base_seed = 42;
  options.jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweep_grid(families, lineup, options));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(families.size() * lineup.size() *
                                options.trials));
}
BENCHMARK(BM_ParallelSweep)
    ->ArgName("jobs")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_GraphConstruction(benchmark::State& state) {
  Rng rng(7);
  RandomTaskParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        random_layered_dag(rng, static_cast<std::size_t>(state.range(0)), 32,
                           params));
  }
}
BENCHMARK(BM_GraphConstruction)->Arg(4096);

}  // namespace
