// catbatchd service throughput: sessions/sec, decisions/sec, and
// per-request latency percentiles through the real protocol path, plus the
// service regression gate.
//
// Drives run_loadgen() against an in-process ServiceHub (HubClient — the
// protocol + engine cost with zero transport I/O, the same path the unix
// transport serializes onto per-connection strands) at 64 concurrent
// client connections, one scenario per session clock. Emits
// BENCH_service.json.
//
// Entry points (see bench/CMakeLists.txt):
//
//   --gate   runs both scenarios and compares decisions/sec against the
//            checked-in baseline (bench/service_baseline.txt): throughput
//            must stay above CATBATCH_PERF_GATE_FACTOR (default 0.5) times
//            the recorded value, and the simulated-clock scenario must
//            clear the absolute floor of 10k decisions/sec regardless of
//            the baseline. A missing baseline or key FAILS the gate.
//   --smoke  tiny sizes (sanitizer-safe), validates the JSON shape only.
//   --write-baseline  rewrites the cur.* keys of the baseline file.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/json_report.hpp"
#include "service/client.hpp"
#include "service/hub.hpp"
#include "service/loadgen.hpp"
#include "support/json.hpp"

namespace {

using namespace catbatch;

/// The acceptance floor for the service: aggregate decision throughput at
/// 64 concurrent sessions must not fall below this, baseline or not.
constexpr double kAbsoluteFloorDecisionsPerSec = 10000.0;

struct Scenario {
  const char* name;   // baseline key component
  const char* clock;  // "simulated" | "external"
};

constexpr Scenario kScenarios[] = {{"simulated", "simulated"},
                                   {"external", "external"}};

struct Measurement {
  std::string scenario;
  LoadgenOptions options;
  LoadgenStats stats;
};

Measurement measure(const Scenario& scenario, bool smoke) {
  LoadgenOptions options;
  options.sessions = smoke ? 8 : 256;
  options.concurrency = smoke ? 2 : 64;
  options.tasks_per_session = smoke ? 8 : 64;
  options.procs = 64;
  options.algo = "catbatch";
  options.clock = scenario.clock;
  options.seed = 20260808;

  ServiceHub hub;
  const ClientFactory factory = [&]() -> std::unique_ptr<LineClient> {
    return std::make_unique<HubClient>(hub);
  };
  Measurement m;
  m.scenario = scenario.name;
  m.options = options;
  m.stats = run_loadgen(factory, options);
  return m;
}

std::map<std::string, double> load_baseline(const std::string& path,
                                            bool* file_ok) {
  std::map<std::string, double> baseline;
  std::ifstream in(path);
  if (file_ok != nullptr) *file_ok = in.good();
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    double value = 0.0;
    if (fields >> key >> value && !key.empty() && key[0] != '#') {
      baseline[key] = value;
    }
  }
  return baseline;
}

std::string baseline_key(const Measurement& m) {
  return "cur.service." + m.scenario + ".decisions_per_sec";
}

double lookup(const std::map<std::string, double>& baseline,
              const std::string& key) {
  const auto it = baseline.find(key);
  return it == baseline.end() ? 0.0 : it->second;
}

std::string report_json(const std::vector<Measurement>& results,
                        const std::map<std::string, double>& baseline,
                        const char* mode) {
  JsonWriter w;
  w.begin_object();
  w.key("bench").value("service");
  w.key("schema").value(1);
  w.key("mode").value(mode);
  w.key("transport").value("hub");
  w.key("results").begin_array();
  for (const Measurement& m : results) {
    w.begin_object();
    w.key("scenario").value(m.scenario);
    w.key("algo").value(m.options.algo);
    w.key("clock").value(m.options.clock);
    w.key("sessions").value(m.stats.sessions);
    w.key("concurrency").value(m.options.concurrency);
    w.key("tasks_per_session").value(m.options.tasks_per_session);
    w.key("procs").value(m.options.procs);
    w.key("requests").value(m.stats.requests);
    w.key("decisions").value(m.stats.decisions);
    w.key("elapsed_sec").value(m.stats.elapsed_sec);
    w.key("sessions_per_sec").value(m.stats.sessions_per_sec);
    w.key("decisions_per_sec").value(m.stats.decisions_per_sec);
    w.key("p50_latency_us").value(m.stats.p50_latency_us);
    w.key("p99_latency_us").value(m.stats.p99_latency_us);
    w.key("max_latency_us").value(m.stats.max_latency_us);
    const double base = lookup(baseline, baseline_key(m));
    if (base > 0.0) w.key("baseline_decisions_per_sec").value(base);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool json_shape_ok(const std::string& json,
                   const std::vector<Measurement>& results) {
  const char* required[] = {"\"bench\"",
                            "\"service\"",
                            "\"results\"",
                            "\"decisions_per_sec\"",
                            "\"p50_latency_us\"",
                            "\"p99_latency_us\""};
  for (const char* token : required) {
    if (json.find(token) == std::string::npos) {
      std::fprintf(stderr, "BENCH_service.json is missing %s\n", token);
      return false;
    }
  }
  std::size_t entries = 0;
  for (std::size_t at = json.find("\"scenario\""); at != std::string::npos;
       at = json.find("\"scenario\"", at + 1)) {
    ++entries;
  }
  if (entries != results.size()) {
    std::fprintf(stderr,
                 "BENCH_service.json has %zu entries, expected %zu\n",
                 entries, results.size());
    return false;
  }
  return !json.empty() && json.front() == '{' && json.back() == '}';
}

double env_factor(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    const double f = std::atof(env);
    if (f > 0.0) return f;
  }
  return fallback;
}

bool write_baseline(const std::string& path,
                    const std::vector<Measurement>& results) {
  std::vector<std::string> kept;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("cur.", 0) == 0) continue;
      kept.push_back(line);
    }
  }
  while (!kept.empty() && kept.back().empty()) kept.pop_back();
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    std::fprintf(stderr, "cannot write baseline file %s\n", path.c_str());
    return false;
  }
  for (const std::string& line : kept) out << line << "\n";
  out.precision(6);
  out.setf(std::ios::scientific, std::ios::floatfield);
  for (const Measurement& m : results) {
    out << baseline_key(m) << " " << m.stats.decisions_per_sec << "\n";
  }
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  bool gate = false;
  bool smoke = false;
  bool write = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--write-baseline") == 0) {
      write = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--gate|--smoke|--write-baseline] "
                   "[--baseline FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (write && baseline_path.empty()) {
    std::fprintf(stderr, "--write-baseline requires --baseline FILE\n");
    return 2;
  }

  bool baseline_file_ok = false;
  const std::map<std::string, double> baseline =
      baseline_path.empty()
          ? std::map<std::string, double>{}
          : load_baseline(baseline_path, &baseline_file_ok);
  if (gate && (!baseline_file_ok || baseline.empty())) {
    std::fprintf(stderr,
                 "gate: baseline file '%s' is missing, unreadable, or empty "
                 "-- refusing to pass silently.\n"
                 "gate: regenerate with: %s --write-baseline --baseline %s\n",
                 baseline_path.c_str(), argv[0], baseline_path.c_str());
    return 1;
  }

  std::vector<Measurement> results;
  for (const Scenario& scenario : kScenarios) {
    const Measurement m = measure(scenario, smoke);
    std::printf(
        "%-10s sessions=%llu decisions_per_sec=%.6e sessions_per_sec=%.3e "
        "p50_us=%.1f p99_us=%.1f\n",
        m.scenario.c_str(),
        static_cast<unsigned long long>(m.stats.sessions),
        m.stats.decisions_per_sec, m.stats.sessions_per_sec,
        m.stats.p50_latency_us, m.stats.p99_latency_us);
    results.push_back(m);
  }

  const char* mode = smoke   ? "smoke"
                     : gate  ? "gate"
                     : write ? "write-baseline"
                             : "full";
  const std::string json = report_json(results, baseline, mode);
  const std::string path = write_bench_report("service", json);
  std::printf("wrote %s\n", path.c_str());

  if (smoke) {
    if (!json_shape_ok(json, results)) return 1;
    std::printf("smoke: BENCH_service.json shape OK\n");
    return 0;
  }

  if (write) {
    if (!write_baseline(baseline_path, results)) return 1;
    std::printf("rewrote cur.* keys of %s\n", baseline_path.c_str());
    return 0;
  }

  if (gate) {
    const double factor = env_factor("CATBATCH_PERF_GATE_FACTOR", 0.5);
    bool ok = true;
    for (const Measurement& m : results) {
      const std::string key = baseline_key(m);
      const double base = lookup(baseline, key);
      if (base <= 0.0) {
        std::fprintf(stderr,
                     "gate: FAIL -- baseline has no %s (a stale baseline "
                     "does not excuse the gate).\n",
                     key.c_str());
        ok = false;
        continue;
      }
      double floor = factor * base;
      if (m.options.clock == std::string("simulated")) {
        floor = std::max(floor, kAbsoluteFloorDecisionsPerSec);
      }
      const bool pass = m.stats.decisions_per_sec >= floor;
      std::printf("gate: %-10s measured=%.3e floor=%.3e (%.2fx baseline) "
                  "%s\n",
                  m.scenario.c_str(), m.stats.decisions_per_sec, floor,
                  m.stats.decisions_per_sec / base, pass ? "PASS" : "FAIL");
      ok = ok && pass;
    }
    return ok ? 0 : 1;
  }

  return 0;
}
