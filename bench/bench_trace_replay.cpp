// Production trace replay: CatBatch against the backfilling lineup on an
// SWF-shaped workload (instances/trace.hpp), reporting the flow metrics a
// cluster operator actually watches — makespan, mean/max flow, mean/max
// stretch — plus per-decision scheduler cost. Emits BENCH_trace_replay.json
// (schema documented in docs/BENCHMARKS.md, "Trace replay").
//
// Entry points (see bench/CMakeLists.txt):
//   (default)  synthesizes a 100k-job SWF workload at offered load 0.7 and
//              replays the full lineup (one line per scheduler);
//   --smoke    replays the bundled trace excerpt (tests/corpus/
//              trace_excerpt.swf) and validates the JSON shape — the
//              catbatch_trace_replay_smoke ctest gate;
//   --gate     scheduler-only queue-drain throughput assertion: reveals a
//              deep all-ready queue to each backfill scheduler and drives
//              it to empty, requiring at least CATBATCH_TRACE_GATE_DECISIONS
//              starts/sec (default 100000). The pre-rework EasyBackfill
//              erased its FIFO vector per start — an O(n^2) drain that
//              fails this gate by an order of magnitude;
//   --trace F [--format swf|batsim]  replays a real archive trace instead
//              of the synthetic workload.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <queue>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/flow_metrics.hpp"
#include "analysis/json_report.hpp"
#include "instances/trace.hpp"
#include "obs/metrics.hpp"
#include "sched/backfill.hpp"
#include "sched/conservative_backfill.hpp"
#include "sched/registry.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace {

using namespace catbatch;

// Strict catbatch is absent for the same reason as in bench_job_stream:
// its batch barrier asserts that reveals only ever carry strictly-future
// categories (Corollary 2), which holds in the pure precedence model but
// not under arrival streams — a short job submitted late is a past
// category. relaxed-catbatch is the repo's CatBatch under arrivals
// (Section 7 heuristic: category priority without the barrier).
constexpr const char* kLineup[] = {
    "relaxed-catbatch",      "list-fifo",
    "easy-backfill",         "easy-backfill-padded",
    "easy-backfill-adaptive", "conservative-backfill"};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Row {
  std::string scheduler;
  double makespan = 0.0;
  double utilization = 0.0;
  FlowMetrics flow;
  std::size_t decisions = 0;
  double decisions_per_sec = 0.0;
  double select_mean_us = 0.0;
  double wall_ms = 0.0;
};

Row replay_one(const TraceWorkload& trace, const std::string& name,
               int procs) {
  MetricsRegistry metrics;
  auto scheduler = instrument_scheduler(make_scheduler(name), metrics);
  const auto t0 = std::chrono::steady_clock::now();
  const SimResult result = replay_trace(trace, *scheduler, procs);
  const double wall = seconds_since(t0);

  Row row;
  row.scheduler = name;
  row.makespan = result.makespan;
  row.utilization = result.average_utilization(procs);
  row.flow = compute_flow_metrics(
      std::span<const Time>(trace.run.data(), trace.run.size()), result);
  row.decisions = result.stats.decision_points;
  row.decisions_per_sec =
      wall > 0.0 ? static_cast<double>(row.decisions) / wall : 0.0;
  row.wall_ms = wall * 1e3;
  if (const auto* info = metrics.find("sched." + name + ".select_us");
      info != nullptr) {
    const auto view = metrics.histogram_view(info->id);
    if (view.total > 0) {
      row.select_mean_us = view.sum / static_cast<double>(view.total);
    }
  }
  return row;
}

std::string report_json(const std::vector<Row>& rows, const char* mode,
                        const std::string& trace_label, int procs,
                        std::size_t jobs, std::size_t dropped) {
  JsonWriter w;
  w.begin_object();
  w.key("bench").value("trace_replay");
  w.key("schema").value(1);
  w.key("mode").value(mode);
  w.key("trace").value(trace_label);
  w.key("procs").value(procs);
  w.key("jobs").value(static_cast<std::uint64_t>(jobs));
  w.key("dropped").value(static_cast<std::uint64_t>(dropped));
  w.key("results").begin_array();
  for (const Row& row : rows) {
    w.begin_object();
    w.key("scheduler").value(row.scheduler);
    w.key("makespan").value(row.makespan);
    w.key("utilization").value(row.utilization);
    w.key("mean_wait").value(row.flow.mean_wait);
    w.key("max_wait").value(row.flow.max_wait);
    w.key("mean_flow").value(row.flow.mean_flow);
    w.key("max_flow").value(row.flow.max_flow);
    w.key("mean_stretch").value(row.flow.mean_stretch);
    w.key("max_stretch").value(row.flow.max_stretch);
    w.key("stretch_skipped")
        .value(static_cast<std::uint64_t>(row.flow.stretch_skipped));
    w.key("decisions").value(static_cast<std::uint64_t>(row.decisions));
    w.key("decisions_per_sec").value(row.decisions_per_sec);
    w.key("select_mean_us").value(row.select_mean_us);
    w.key("wall_ms").value(row.wall_ms);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool json_shape_ok(const std::string& json, std::size_t expected_rows) {
  const char* required[] = {"\"bench\"",        "\"trace_replay\"",
                            "\"results\"",      "\"makespan\"",
                            "\"mean_flow\"",    "\"max_flow\"",
                            "\"mean_stretch\"", "\"max_stretch\"",
                            "\"decisions_per_sec\""};
  for (const char* token : required) {
    if (json.find(token) == std::string::npos) {
      std::fprintf(stderr, "BENCH_trace_replay.json is missing %s\n", token);
      return false;
    }
  }
  std::size_t rows = 0;
  for (std::size_t at = json.find("\"scheduler\""); at != std::string::npos;
       at = json.find("\"scheduler\"", at + 1)) {
    ++rows;
  }
  if (rows != expected_rows) {
    std::fprintf(stderr,
                 "BENCH_trace_replay.json has %zu rows, expected %zu\n",
                 rows, expected_rows);
    return false;
  }
  return !json.empty() && json.front() == '{' && json.back() == '}';
}

/// Scheduler-only drain: reveal `jobs` single-processor all-ready jobs,
/// then alternate decision points and earliest-finish completions until
/// everything started. Measures queue maintenance, not the engine — the
/// head always fits as soon as a processor frees, so a linear-per-start
/// queue turns this into an O(n^2) drain.
double drain_starts_per_sec(OnlineScheduler& scheduler, std::size_t jobs,
                            int procs) {
  scheduler.reset();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < jobs; ++i) {
    ReadyTask task;
    task.id = static_cast<TaskId>(i);
    task.work = 10.0 + static_cast<double>(i % 7);
    task.procs = 1;
    scheduler.task_ready(task, 0.0);
  }
  using Finish = std::pair<Time, std::pair<TaskId, int>>;
  std::priority_queue<Finish, std::vector<Finish>, std::greater<Finish>>
      running;
  std::vector<TaskId> picks;
  std::size_t started = 0;
  Time now = 0.0;
  int avail = procs;
  while (started < jobs) {
    picks.clear();
    scheduler.select(now, avail, picks);
    for (const TaskId id : picks) {
      avail -= 1;
      running.push({now + 10.0 + static_cast<double>(id % 7), {id, 1}});
    }
    started += picks.size();
    if (started >= jobs) break;
    if (running.empty() && picks.empty()) {
      std::fprintf(stderr, "gate drive stalled at %zu/%zu starts\n",
                   started, jobs);
      return 0.0;
    }
    if (picks.empty()) {
      const Finish next = running.top();
      running.pop();
      now = next.first;
      avail += next.second.second;
      scheduler.task_finished(next.second.first, now);
    }
  }
  const double wall = seconds_since(t0);
  return wall > 0.0 ? static_cast<double>(jobs) / wall : 0.0;
}

bool run_gate() {
  double required = 100000.0;
  if (const char* env = std::getenv("CATBATCH_TRACE_GATE_DECISIONS");
      env != nullptr && *env != '\0') {
    required = std::atof(env);
  }
  bool ok = true;
  constexpr int kGateProcs = 64;
  EasyBackfill easy;
  ConservativeBackfill conservative;
  const struct {
    OnlineScheduler* scheduler;
    std::size_t jobs;
  } cases[] = {{&easy, 100000}, {&conservative, 50000}};
  for (const auto& c : cases) {
    const double rate = drain_starts_per_sec(*c.scheduler, c.jobs,
                                             kGateProcs);
    const bool pass = rate >= required;
    std::printf("gate %-22s %zu jobs: %.0f starts/sec (required %.0f) %s\n",
                c.scheduler->name().c_str(), c.jobs, rate, required,
                pass ? "OK" : "FAIL");
    ok = ok && pass;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool gate = false;
  const char* trace_path = nullptr;
  const char* format = "swf";
  std::size_t jobs = 100000;
  int procs = 256;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
      format = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--procs") == 0 && i + 1 < argc) {
      procs = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke | --gate] [--trace FILE "
                   "[--format swf|batsim]] [--jobs N] [--procs N]\n",
                   argv[0]);
      return 2;
    }
  }

  if (gate) return run_gate() ? 0 : 1;

#ifdef CATBATCH_TRACE_EXCERPT
  if (smoke && trace_path == nullptr) trace_path = CATBATCH_TRACE_EXCERPT;
#endif

  TraceWorkload trace;
  std::string trace_label;
  if (trace_path != nullptr) {
    trace_label = trace_path;
    if (std::strcmp(format, "batsim") == 0) {
      std::ifstream in(trace_path);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", trace_path);
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      trace = parse_batsim_json(text.str());
    } else {
      std::ifstream in(trace_path);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", trace_path);
        return 1;
      }
      trace = parse_swf(in);
    }
    if (trace.max_procs > 0) procs = trace.max_procs;
  } else {
    trace_label = "synthetic-swf";
    Rng rng(20260808);
    trace = generate_swf_workload(rng, smoke ? 256 : jobs, procs, 0.7);
  }
  if (trace.size() == 0) {
    std::fprintf(stderr, "trace has no usable jobs\n");
    return 1;
  }

  std::vector<Row> rows;
  for (const char* name : kLineup) {
    Row row = replay_one(trace, name, procs);
    std::printf(
        "%-24s makespan=%.0f util=%.2f mean_flow=%.1f max_stretch=%.1f "
        "decisions=%zu (%.0f/sec, select %.2fus)\n",
        row.scheduler.c_str(), row.makespan, row.utilization,
        row.flow.mean_flow, row.flow.max_stretch, row.decisions,
        row.decisions_per_sec, row.select_mean_us);
    rows.push_back(std::move(row));
  }

  const std::string json =
      report_json(rows, smoke ? "smoke" : "full", trace_label, procs,
                  trace.size(), trace.dropped);
  const std::string path = write_bench_report("trace_replay", json);
  std::printf("wrote %s\n", path.c_str());

  if (smoke) {
    if (!json_shape_ok(json, rows.size())) return 1;
    std::printf("smoke: BENCH_trace_replay.json shape OK\n");
  }
  return 0;
}
