// Engine micro-benchmarks and the perf regression gate.
//
// Measures end-to-end simulate() throughput (tasks/sec and events/sec) in
// counting mode on fixed random layered DAGs at n in {1k, 10k, 100k} for
// CatBatch and FIFO list scheduling, then emits BENCH_perf.json. Two ctest
// entry points (see bench/CMakeLists.txt):
//
//   --gate   compares the measured throughput against the checked-in
//            baseline (bench/perf_baseline.txt) and exits non-zero when any
//            measurement falls below CATBATCH_PERF_GATE_FACTOR (default
//            0.5) times the recorded post-rewrite value. The generous
//            factor absorbs machine-to-machine and load variance while
//            still catching order-of-magnitude regressions such as an
//            accidental O(n) step per event.
//   --smoke  runs the same pipeline at tiny sizes (also under sanitizers)
//            and validates the JSON document's shape without gating.
//
// The baseline file is `key value` lines. `pre.*` keys hold the pre-rewrite
// engine's throughput on the same instances (for the speedup_vs_pre fields
// in the report); `cur.*` keys hold the rewritten engine's and are what the
// gate compares against.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/json_report.hpp"
#include "instances/random_dags.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"

namespace {

using namespace catbatch;

constexpr int kProcs = 32;

TaskGraph perf_graph(std::size_t n) {
  Rng rng(987654321u + n);
  RandomTaskParams params;
  params.procs.max_procs = kProcs;
  return random_layered_dag(rng, n, std::max<std::size_t>(2, n / 16), params);
}

std::unique_ptr<OnlineScheduler> make_sched(const std::string& name) {
  if (name == "catbatch") return std::make_unique<CatBatchScheduler>();
  ListSchedulerOptions options;
  options.priority = ListPriority::Fifo;
  return std::make_unique<ListScheduler>(options);
}

struct Measurement {
  std::string scheduler;
  std::size_t tasks = 0;
  double tasks_per_sec = 0.0;
  double events_per_sec = 0.0;
};

/// Best-of-`reps` timing of a counting-mode simulate() run (the minimum is
/// the standard noise-robust estimator for micro-benchmarks).
Measurement measure(const std::string& sched_name, std::size_t n, int reps) {
  const TaskGraph g = perf_graph(n);
  const SimOptions options{ScheduleMode::Counting};
  {
    auto warmup = make_sched(sched_name);
    (void)simulate(g, *warmup, kProcs, options).makespan;
  }
  double best = 1e300;
  std::size_t events = 0;
  for (int r = 0; r < reps; ++r) {
    auto sched = make_sched(sched_name);
    const auto t0 = std::chrono::steady_clock::now();
    const SimResult res = simulate(g, *sched, kProcs, options);
    const auto dt = std::chrono::steady_clock::now() - t0;
    best = std::min(best, std::chrono::duration<double>(dt).count());
    events = res.stats.events;
  }
  Measurement m;
  m.scheduler = sched_name;
  m.tasks = n;
  m.tasks_per_sec = static_cast<double>(n) / best;
  m.events_per_sec = static_cast<double>(events) / best;
  return m;
}

std::map<std::string, double> load_baseline(const std::string& path) {
  std::map<std::string, double> baseline;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    double value = 0.0;
    if (fields >> key >> value && !key.empty() && key[0] != '#') {
      baseline[key] = value;
    }
  }
  return baseline;
}

std::string baseline_key(const char* era, const Measurement& m) {
  std::ostringstream os;
  os << era << "." << m.scheduler << "." << m.tasks << ".tasks_per_sec";
  return os.str();
}

double lookup(const std::map<std::string, double>& baseline,
              const std::string& key) {
  const auto it = baseline.find(key);
  return it == baseline.end() ? 0.0 : it->second;
}

std::string report_json(const std::vector<Measurement>& results,
                        const std::map<std::string, double>& baseline,
                        const char* mode) {
  JsonWriter w;
  w.begin_object();
  w.key("bench").value("perf");
  w.key("schema").value(1);
  w.key("mode").value(mode);
  w.key("procs").value(kProcs);
  w.key("schedule_mode").value("counting");
  w.key("results").begin_array();
  for (const Measurement& m : results) {
    const double pre = lookup(baseline, baseline_key("pre", m));
    const double cur = lookup(baseline, baseline_key("cur", m));
    w.begin_object();
    w.key("scheduler").value(m.scheduler);
    w.key("tasks").value(static_cast<std::uint64_t>(m.tasks));
    w.key("tasks_per_sec").value(m.tasks_per_sec);
    w.key("events_per_sec").value(m.events_per_sec);
    if (pre > 0.0) {
      w.key("pre_rewrite_tasks_per_sec").value(pre);
      w.key("speedup_vs_pre").value(m.tasks_per_sec / pre);
    }
    if (cur > 0.0) w.key("baseline_tasks_per_sec").value(cur);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

/// Structural sanity of the emitted document (the smoke test's assertion).
bool json_shape_ok(const std::string& json,
                   const std::vector<Measurement>& results) {
  const char* required[] = {"\"bench\"",         "\"perf\"",
                            "\"schema\"",        "\"results\"",
                            "\"tasks_per_sec\"", "\"events_per_sec\""};
  for (const char* token : required) {
    if (json.find(token) == std::string::npos) {
      std::fprintf(stderr, "BENCH_perf.json is missing %s\n", token);
      return false;
    }
  }
  std::size_t entries = 0;
  for (std::size_t at = json.find("\"scheduler\""); at != std::string::npos;
       at = json.find("\"scheduler\"", at + 1)) {
    ++entries;
  }
  if (entries != results.size()) {
    std::fprintf(stderr, "BENCH_perf.json has %zu entries, expected %zu\n",
                 entries, results.size());
    return false;
  }
  return json.front() == '{' && json.back() == '}';
}

double gate_factor() {
  if (const char* env = std::getenv("CATBATCH_PERF_GATE_FACTOR")) {
    const double f = std::atof(env);
    if (f > 0.0) return f;
  }
  return 0.5;
}

}  // namespace

int main(int argc, char** argv) {
  bool gate = false;
  bool smoke = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--gate|--smoke] [--baseline FILE]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{64, 256}
      : gate
          ? std::vector<std::size_t>{1000, 10000}
          : std::vector<std::size_t>{1000, 10000, 100000};
  const std::map<std::string, double> baseline =
      baseline_path.empty() ? std::map<std::string, double>{}
                            : load_baseline(baseline_path);

  std::vector<Measurement> results;
  for (const std::size_t n : sizes) {
    const int reps = smoke ? 2 : n >= 100000 ? 3 : 5;
    for (const char* sched : {"catbatch", "list-fifo"}) {
      const Measurement m = measure(sched, n, reps);
      std::printf("%-10s n=%-7zu tasks_per_sec=%.6e events_per_sec=%.6e\n",
                  m.scheduler.c_str(), m.tasks, m.tasks_per_sec,
                  m.events_per_sec);
      results.push_back(m);
    }
  }

  const char* mode = smoke ? "smoke" : gate ? "gate" : "full";
  const std::string json = report_json(results, baseline, mode);
  const std::string path = write_bench_report("perf", json);
  std::printf("wrote %s\n", path.c_str());

  if (smoke) {
    if (!json_shape_ok(json, results)) return 1;
    std::printf("smoke: BENCH_perf.json shape OK\n");
    return 0;
  }

  if (gate) {
    const double factor = gate_factor();
    bool ok = true;
    for (const Measurement& m : results) {
      const double cur = lookup(baseline, baseline_key("cur", m));
      if (cur <= 0.0) {
        std::fprintf(stderr, "gate: no baseline for %s, skipping\n",
                     baseline_key("cur", m).c_str());
        continue;
      }
      const double floor = factor * cur;
      const bool pass = m.tasks_per_sec >= floor;
      std::printf("gate: %-10s n=%-7zu measured=%.3e floor=%.3e (%.2fx "
                  "baseline) %s\n",
                  m.scheduler.c_str(), m.tasks, m.tasks_per_sec, floor,
                  m.tasks_per_sec / cur, pass ? "PASS" : "FAIL");
      ok = ok && pass;
    }
    return ok ? 0 : 1;
  }
  return 0;
}
