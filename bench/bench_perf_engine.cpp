// Engine micro-benchmarks and the perf regression gate.
//
// Measures end-to-end simulate() throughput (tasks/sec and events/sec) in
// counting mode on fixed random layered DAGs for CatBatch and FIFO list
// scheduling, then emits BENCH_perf.json. Tiers: 1k/10k/100k run through
// the classic TaskGraph path (GraphSource); 1M and 10M run through the
// streaming SoA pipeline (build_soa_graph / huge_layered_soa + SoaSource),
// which is the layout the scale work targets — the one-time SoA freeze is
// reported separately as instance_build_seconds and excluded from the
// simulate() timing. Tiers at or above 1M also measure *peak-RSS bytes per
// task* over a dedicated simulate() run (obs/process_stats.hpp), the
// layout-regression canary: a per-task string or AoS row creeping back in
// moves bytes/task long before it moves tasks/sec.
//
// Entry points (see bench/CMakeLists.txt):
//
//   --gate      runs 1k/10k/100k/1M plus the 10M ingest tier and compares
//               against the checked-in baseline (bench/perf_baseline.txt):
//               throughput must stay above CATBATCH_PERF_GATE_FACTOR
//               (default 0.5) times the recorded value, and bytes/task
//               must stay below CATBATCH_PERF_GATE_MEM_FACTOR (default
//               2.0) times it. A missing baseline file or a missing gated
//               key FAILS the gate with regeneration instructions — a
//               silent skip hides exactly the regressions the gate exists
//               to catch. On hosts with >= 8 hardware threads the gate
//               additionally requires the 8-thread 10M ingest to beat the
//               serial ingest by CATBATCH_PERF_GATE_INGEST_SPEEDUP
//               (default 2.5) — measured interleaved in the same window,
//               like every A/B here; narrower hosts print a loud SKIP.
//   --smoke     tiny sizes (also runnable under sanitizers), validates the
//               JSON document's shape without gating, and cross-checks the
//               parallel build/criticality/chunked-ingest paths against
//               their serial twins bit-for-bit.
//   --smoke-1m  the 1M tier only, counting mode, no gating: the quick
//               at-scale sanity run behind the catbatch_perf_smoke_1m
//               build target.
//   --threads-sweep  scaling table: the 1M ingest tier at 1/2/4/8
//               threads, emitted as the threads_sweep array of
//               BENCH_perf.json. No gating — a diagnosis tool.
//   --write-baseline  runs the gate tiers and rewrites the cur.* keys of
//               the baseline file in place (comments and pre.* lines are
//               preserved verbatim).
//
// The ingest tier times the front half of the pipeline — raw-array SoA
// freeze (validation, successor CSR, levels) plus SessionEngine ingest
// (record fill, criticality precompute) — the part the parallel passes
// accelerate; the event loop itself stays single-threaded by design. Its
// rows carry scheduler names "ingest" (serial) and "ingest8" (8 threads,
// fixed 4096 chunk) and gate like any other tasks_per_sec key.
//
// The baseline file is `key value` lines. `pre.*` keys hold the
// pre-refactor engine's numbers on the same instances (for the
// speedup_vs_pre fields in the report); `cur.*` keys hold the current
// engine's and are what the gate compares against.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <thread>

#include "analysis/json_report.hpp"
#include "core/soa_graph.hpp"
#include "instances/random_dags.hpp"
#include "instances/streaming.hpp"
#include "obs/process_stats.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace {

using namespace catbatch;

constexpr int kProcs = 32;
constexpr std::size_t kSoaTier = 1000000;  // tiers >= this use the SoA path

TaskGraph perf_graph(std::size_t n) {
  Rng rng(987654321u + n);
  RandomTaskParams params;
  params.procs.max_procs = kProcs;
  return random_layered_dag(rng, n, std::max<std::size_t>(2, n / 16), params);
}

/// The 10M-task instance never materializes a TaskGraph: same layered
/// family and seed recipe, emitted straight to CSR.
SoaGraph perf_soa_huge(std::size_t n) {
  Rng rng(987654321u + n);
  RandomTaskParams params;
  params.procs.max_procs = kProcs;
  return huge_layered_soa(rng, n, std::max<std::size_t>(2, n / 16), params);
}

std::unique_ptr<OnlineScheduler> make_sched(const std::string& name) {
  if (name == "catbatch") return std::make_unique<CatBatchScheduler>();
  ListSchedulerOptions options;
  options.priority = ListPriority::Fifo;
  return std::make_unique<ListScheduler>(options);
}

struct Measurement {
  std::string scheduler;
  std::size_t tasks = 0;
  double tasks_per_sec = 0.0;
  double events_per_sec = 0.0;
  double bytes_per_task = 0.0;          // 0 = not measured for this tier
  std::size_t peak_rss_bytes = 0;       // of the dedicated memory run
  double instance_build_seconds = 0.0;  // SoA freeze / generation, unshared
  /// True for the ingest+precompute tier rows ("ingest"/"ingestN"):
  /// their throughput gates and serializes under the ingest_tasks_per_sec
  /// metric instead of tasks_per_sec.
  bool ingest = false;
};

const char* throughput_metric(const Measurement& m) {
  return m.ingest ? "ingest_tasks_per_sec" : "tasks_per_sec";
}

double time_once(InstanceSource& source, const std::string& sched_name,
                 std::size_t* events_out) {
  auto sched = make_sched(sched_name);
  const auto t0 = std::chrono::steady_clock::now();
  const SimResult res =
      simulate(source, *sched, kProcs, SimOptions{ScheduleMode::Counting});
  const auto dt = std::chrono::steady_clock::now() - t0;
  if (events_out != nullptr) *events_out = res.stats.events;
  return std::chrono::duration<double>(dt).count();
}

/// Best-of-`reps` timing of counting-mode simulate() through `source` (the
/// minimum is the standard noise-robust estimator for micro-benchmarks),
/// plus — when `measure_memory` — one dedicated run bracketed by a peak-RSS
/// watermark reset that prices the engine's allocations in bytes/task.
Measurement measure_source(InstanceSource& source,
                           const std::string& sched_name, std::size_t n,
                           int reps, bool measure_memory) {
  (void)time_once(source, sched_name, nullptr);  // warmup
  Measurement m;
  m.scheduler = sched_name;
  m.tasks = n;
  if (measure_memory && reset_peak_rss()) {
    const std::size_t rss_before = current_rss_bytes();
    (void)time_once(source, sched_name, nullptr);
    const std::size_t peak = peak_rss_bytes();
    m.peak_rss_bytes = peak;
    if (peak > rss_before) {
      m.bytes_per_task =
          static_cast<double>(peak - rss_before) / static_cast<double>(n);
    }
  }
  double best = 1e300;
  std::size_t events = 0;
  for (int r = 0; r < reps; ++r) {
    best = std::min(best, time_once(source, sched_name, &events));
  }
  m.tasks_per_sec = static_cast<double>(n) / best;
  m.events_per_sec = static_cast<double>(events) / best;
  return m;
}

/// One timed ingest+precompute run: raw-array SoA freeze plus
/// SessionEngine::submit(SoaSource) — everything up to (and including) the
/// t=0 decision point, nothing of the event loop. The raw-array copies are
/// taken outside the timer; the proto graph supplies identical inputs to
/// every run, so serial and parallel time exactly the same work.
double time_ingest_once(const SoaGraph& proto, const ParallelOptions& par) {
  std::vector<Time> work = proto.work;
  std::vector<int> procs = proto.procs;
  std::vector<std::uint32_t> offsets = proto.pred_offsets;
  std::vector<TaskId> preds = proto.pred_data;
  CatBatchScheduler sched;
  const auto t0 = std::chrono::steady_clock::now();
  const SoaGraph g =
      build_soa_graph(std::move(work), std::move(procs), std::move(offsets),
                      std::move(preds), {}, nullptr, par);
  SoaSource source(g);
  SessionEngine engine(sched, kProcs,
                       SimOptions{ScheduleMode::Counting}.with_parallel(par));
  (void)engine.submit(source);
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double>(dt).count();
}

/// Best-of-`reps` ingest throughput at `threads`. When `other` is non-null
/// the reps are interleaved with the other configuration in the same
/// measurement window (A/B/A/B...), the same drift-robust methodology the
/// pre/cur baselines were measured with (see bench/perf_baseline.txt).
Measurement measure_ingest(const SoaGraph& proto, int threads, int reps,
                           double* best_out) {
  const ParallelOptions par = ParallelOptions{}.with_threads(threads);
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    best = std::min(best, time_ingest_once(proto, par));
  }
  if (best_out != nullptr) *best_out = best;
  Measurement m;
  m.scheduler = threads <= 1 ? "ingest" : "ingest" + std::to_string(threads);
  m.tasks = proto.size();
  m.tasks_per_sec = static_cast<double>(proto.size()) / best;
  m.ingest = true;
  return m;
}

/// The interleaved serial-vs-8-thread ingest pair for one proto instance.
std::vector<Measurement> measure_ingest_pair(const SoaGraph& proto,
                                             int reps) {
  (void)time_ingest_once(proto, ParallelOptions{});  // warmup
  double best_serial = 1e300;
  double best_par = 1e300;
  const ParallelOptions par8 = ParallelOptions{}.with_threads(8);
  for (int r = 0; r < reps; ++r) {
    best_serial = std::min(best_serial, time_ingest_once(proto, {}));
    best_par = std::min(best_par, time_ingest_once(proto, par8));
  }
  const auto n = static_cast<double>(proto.size());
  Measurement serial;
  serial.scheduler = "ingest";
  serial.tasks = proto.size();
  serial.tasks_per_sec = n / best_serial;
  serial.ingest = true;
  Measurement par;
  par.scheduler = "ingest8";
  par.tasks = proto.size();
  par.tasks_per_sec = n / best_par;
  par.ingest = true;
  return {serial, par};
}

std::map<std::string, double> load_baseline(const std::string& path,
                                            bool* file_ok) {
  std::map<std::string, double> baseline;
  std::ifstream in(path);
  if (file_ok != nullptr) *file_ok = in.good();
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    double value = 0.0;
    if (fields >> key >> value && !key.empty() && key[0] != '#') {
      baseline[key] = value;
    }
  }
  return baseline;
}

std::string baseline_key(const char* era, const Measurement& m,
                         const char* metric) {
  std::ostringstream os;
  os << era << "." << m.scheduler << "." << m.tasks << "." << metric;
  return os.str();
}

double lookup(const std::map<std::string, double>& baseline,
              const std::string& key) {
  const auto it = baseline.find(key);
  return it == baseline.end() ? 0.0 : it->second;
}

/// One row of the --threads-sweep scaling table.
struct SweepPoint {
  int threads = 1;
  double ingest_tasks_per_sec = 0.0;
};

std::string report_json(const std::vector<Measurement>& results,
                        const std::map<std::string, double>& baseline,
                        const char* mode,
                        const std::vector<SweepPoint>& sweep = {}) {
  JsonWriter w;
  w.begin_object();
  w.key("bench").value("perf");
  w.key("schema").value(2);
  w.key("mode").value(mode);
  w.key("procs").value(kProcs);
  w.key("schedule_mode").value("counting");
  if (!sweep.empty()) {
    w.key("threads_sweep").begin_array();
    const double serial = sweep.front().ingest_tasks_per_sec;
    for (const SweepPoint& p : sweep) {
      w.begin_object();
      w.key("threads").value(p.threads);
      w.key("ingest_tasks_per_sec").value(p.ingest_tasks_per_sec);
      if (serial > 0.0) {
        w.key("speedup_vs_serial").value(p.ingest_tasks_per_sec / serial);
      }
      w.end_object();
    }
    w.end_array();
  }
  w.key("results").begin_array();
  for (const Measurement& m : results) {
    const double pre =
        lookup(baseline, baseline_key("pre", m, throughput_metric(m)));
    const double cur =
        lookup(baseline, baseline_key("cur", m, throughput_metric(m)));
    w.begin_object();
    w.key("scheduler").value(m.scheduler);
    w.key("tasks").value(static_cast<std::uint64_t>(m.tasks));
    w.key(throughput_metric(m)).value(m.tasks_per_sec);
    w.key("events_per_sec").value(m.events_per_sec);
    if (m.bytes_per_task > 0.0) {
      w.key("bytes_per_task").value(m.bytes_per_task);
      w.key("peak_rss_bytes")
          .value(static_cast<std::uint64_t>(m.peak_rss_bytes));
    }
    if (m.instance_build_seconds > 0.0) {
      w.key("instance_build_seconds").value(m.instance_build_seconds);
    }
    if (pre > 0.0) {
      w.key("pre_rewrite_tasks_per_sec").value(pre);
      w.key("speedup_vs_pre").value(m.tasks_per_sec / pre);
    }
    if (cur > 0.0) w.key("baseline_tasks_per_sec").value(cur);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

/// Structural sanity of the emitted document (the smoke test's assertion).
bool json_shape_ok(const std::string& json,
                   const std::vector<Measurement>& results) {
  const char* required[] = {"\"bench\"",         "\"perf\"",
                            "\"schema\"",        "\"results\"",
                            "\"tasks_per_sec\"", "\"events_per_sec\""};
  for (const char* token : required) {
    if (json.find(token) == std::string::npos) {
      std::fprintf(stderr, "BENCH_perf.json is missing %s\n", token);
      return false;
    }
  }
  std::size_t entries = 0;
  for (std::size_t at = json.find("\"scheduler\""); at != std::string::npos;
       at = json.find("\"scheduler\"", at + 1)) {
    ++entries;
  }
  if (entries != results.size()) {
    std::fprintf(stderr, "BENCH_perf.json has %zu entries, expected %zu\n",
                 entries, results.size());
    return false;
  }
  return json.front() == '{' && json.back() == '}';
}

/// Smoke-tier determinism cross-check: the parallel SoA build, the
/// parallel criticality sweep, and parallel chunked engine ingest must be
/// bit-identical to their serial twins on a small instance. Runs under the
/// sanitizer smoke configurations too, so TSan sees the parallel passes on
/// every ctest run.
bool smoke_parallel_ok() {
  const ParallelOptions par = ParallelOptions{}.with_threads(2).with_chunk(64);
  const TaskGraph graph = perf_graph(256);
  const SoaGraph serial_soa = build_soa_graph(graph);
  const SoaGraph par_soa = build_soa_graph(graph, /*with_names=*/false, par);
  if (serial_soa.pred_offsets != par_soa.pred_offsets ||
      serial_soa.pred_data != par_soa.pred_data ||
      serial_soa.succ_offsets != par_soa.succ_offsets ||
      serial_soa.succ_data != par_soa.succ_data ||
      serial_soa.level_offsets != par_soa.level_offsets ||
      serial_soa.level_order != par_soa.level_order ||
      serial_soa.max_procs != par_soa.max_procs) {
    std::fprintf(stderr, "smoke: parallel SoA build diverged from serial\n");
    return false;
  }
  const CriticalityArrays serial_crit = compute_criticalities(serial_soa);
  const CriticalityArrays par_crit = compute_criticalities(par_soa, par);
  if (serial_crit.earliest_start != par_crit.earliest_start ||
      serial_crit.earliest_finish != par_crit.earliest_finish) {
    std::fprintf(stderr,
                 "smoke: parallel criticality sweep diverged from serial\n");
    return false;
  }
  const auto run_chunked = [&](const ParallelOptions& p) {
    // FIFO list scheduling: CatBatch's Corollary 2 contract rejects
    // same-instant arrivals of current-category tasks, which is exactly
    // what chunked t=0 submission produces. The determinism under test
    // lives in the engine's ingest, not in the policy.
    const auto sched = make_sched("list-fifo");
    SessionEngine engine(*sched, kProcs,
                         SimOptions{ScheduleMode::Counting}.with_parallel(p));
    StreamingGraphBuilder builder;
    std::vector<TaskId> preds;
    for (TaskId id = 0; id < serial_soa.size(); ++id) {
      const auto row = serial_soa.predecessors(id);
      preds.assign(row.begin(), row.end());
      (void)builder.add_task(serial_soa.work[id], serial_soa.procs[id], preds);
      if (builder.pending() == 64 || id + 1 == serial_soa.size()) {
        (void)engine.submit(builder.freeze_chunk(), /*now=*/0.0);
      }
    }
    engine.drain();
    return engine.finish();
  };
  const SimResult chunk_serial = run_chunked({});
  const SimResult chunk_par = run_chunked(par);
  const auto a = chunk_serial.schedule.entries();
  const auto b = chunk_par.schedule.entries();
  if (a.size() != b.size() || chunk_serial.makespan != chunk_par.makespan) {
    std::fprintf(stderr, "smoke: parallel chunked ingest diverged\n");
    return false;
  }
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k].id != b[k].id || a[k].start != b[k].start ||
        a[k].finish != b[k].finish || a[k].procs() != b[k].procs()) {
      std::fprintf(stderr, "smoke: parallel chunked ingest diverged\n");
      return false;
    }
  }
  ValidationOptions counted;
  counted.check_processor_sets = false;
  if (const auto error =
          validate_schedule(graph, chunk_par.schedule, kProcs, counted)) {
    std::fprintf(stderr, "smoke: chunked schedule invalid: %s\n",
                 error->c_str());
    return false;
  }
  return true;
}

double env_factor(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    const double f = std::atof(env);
    if (f > 0.0) return f;
  }
  return fallback;
}

void print_regenerate_hint(const char* argv0, const std::string& path) {
  std::fprintf(stderr,
               "gate: regenerate the baseline on this machine with:\n"
               "  %s --write-baseline --baseline %s\n",
               argv0, path.c_str());
}

/// Rewrites the cur.* keys of the baseline file in place: comments and
/// pre.* lines survive verbatim, stale cur.* lines are dropped, and one
/// cur.* line per measured metric is appended in measurement order.
bool write_baseline(const std::string& path,
                    const std::vector<Measurement>& results) {
  std::vector<std::string> kept;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("cur.", 0) == 0) continue;
      kept.push_back(line);
    }
  }
  while (!kept.empty() && kept.back().empty()) kept.pop_back();
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    std::fprintf(stderr, "cannot write baseline file %s\n", path.c_str());
    return false;
  }
  for (const std::string& line : kept) out << line << "\n";
  out.precision(6);
  out.setf(std::ios::scientific, std::ios::floatfield);
  for (const Measurement& m : results) {
    out << baseline_key("cur", m, throughput_metric(m)) << " "
        << m.tasks_per_sec << "\n";
    if (m.bytes_per_task > 0.0) {
      out << baseline_key("cur", m, "bytes_per_task") << " "
          << m.bytes_per_task << "\n";
    }
  }
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  bool gate = false;
  bool smoke = false;
  bool smoke_1m = false;
  bool write = false;
  bool threads_sweep = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--smoke-1m") == 0) {
      smoke_1m = true;
    } else if (std::strcmp(argv[i], "--threads-sweep") == 0) {
      threads_sweep = true;
    } else if (std::strcmp(argv[i], "--write-baseline") == 0) {
      write = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--gate|--smoke|--smoke-1m|--threads-sweep|"
                   "--write-baseline] [--baseline FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (write && baseline_path.empty()) {
    std::fprintf(stderr, "--write-baseline requires --baseline FILE\n");
    return 2;
  }

  if (threads_sweep) {
    // Scaling diagnosis: the 1M ingest tier at 1/2/4/8 threads. The serial
    // row anchors speedup_vs_serial; no gating happens here.
    const SoaGraph proto = perf_soa_huge(1000000);
    (void)time_ingest_once(proto, ParallelOptions{});  // warmup
    std::vector<SweepPoint> sweep;
    std::vector<Measurement> rows;
    for (const int threads : {1, 2, 4, 8}) {
      const Measurement m = measure_ingest(proto, threads, /*reps=*/3, nullptr);
      SweepPoint p;
      p.threads = threads;
      p.ingest_tasks_per_sec = m.tasks_per_sec;
      std::printf("sweep: threads=%d ingest_tasks_per_sec=%.6e speedup=%.2fx\n",
                  threads, p.ingest_tasks_per_sec,
                  sweep.empty() ? 1.0
                                : p.ingest_tasks_per_sec /
                                      sweep.front().ingest_tasks_per_sec);
      sweep.push_back(p);
      rows.push_back(m);
    }
    const std::string json = report_json(rows, {}, "threads-sweep", sweep);
    const std::string path = write_bench_report("perf", json);
    std::printf("wrote %s\n", path.c_str());
    return 0;
  }

  const std::vector<std::size_t> sizes =
      smoke      ? std::vector<std::size_t>{64, 256}
      : smoke_1m ? std::vector<std::size_t>{1000000}
      : (gate || write)
          ? std::vector<std::size_t>{1000, 10000, 100000, 1000000}
          : std::vector<std::size_t>{1000, 10000, 100000, 1000000, 10000000};

  bool baseline_file_ok = false;
  const std::map<std::string, double> baseline =
      baseline_path.empty()
          ? std::map<std::string, double>{}
          : load_baseline(baseline_path, &baseline_file_ok);
  if (gate && (!baseline_file_ok || baseline.empty())) {
    std::fprintf(stderr,
                 "gate: baseline file '%s' is missing, unreadable, or empty "
                 "-- refusing to pass silently.\n",
                 baseline_path.c_str());
    print_regenerate_hint(
        argv[0], baseline_path.empty() ? std::string("bench/perf_baseline.txt")
                                       : baseline_path);
    return 1;
  }

  std::vector<Measurement> results;
  for (const std::size_t n : sizes) {
    const int reps = (smoke || smoke_1m || n >= 10000000) ? 2
                     : n >= 100000                        ? 3
                                                          : 5;
    const bool soa_tier = n >= kSoaTier;

    // Instance construction is hoisted out of the timed region for every
    // tier (the TaskGraph path always did this); for SoA tiers the freeze
    // cost is recorded so the one-time price of the layout stays visible.
    TaskGraph graph;
    SoaGraph soa;
    double build_seconds = 0.0;
    if (soa_tier) {
      const auto t0 = std::chrono::steady_clock::now();
      if (n >= 10000000) {
        soa = perf_soa_huge(n);
      } else {
        graph = perf_graph(n);
        soa = build_soa_graph(graph);
        graph = TaskGraph{};  // only the frozen instance stays resident
      }
      build_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    } else {
      graph = perf_graph(n);
    }

    for (const char* sched : {"catbatch", "list-fifo"}) {
      Measurement m;
      if (soa_tier) {
        SoaSource source(soa);
        m = measure_source(source, sched, n, reps, /*measure_memory=*/true);
        m.instance_build_seconds = build_seconds;
      } else {
        GraphSource source(graph);
        m = measure_source(source, sched, n, reps, /*measure_memory=*/false);
      }
      std::printf("%-10s n=%-8zu tasks_per_sec=%.6e events_per_sec=%.6e",
                  m.scheduler.c_str(), m.tasks, m.tasks_per_sec,
                  m.events_per_sec);
      if (m.bytes_per_task > 0.0) {
        std::printf(" bytes_per_task=%.1f", m.bytes_per_task);
      }
      std::printf("\n");
      results.push_back(m);
    }
  }

  if (gate || write || (!smoke && !smoke_1m)) {
    // The 10M ingest tier: serial vs 8-thread A/B in the same window. The
    // proto instance is generated once and copied per run outside the timer.
    const SoaGraph proto = perf_soa_huge(10000000);
    for (const Measurement& m : measure_ingest_pair(proto, /*reps=*/2)) {
      std::printf("%-10s n=%-8zu ingest_tasks_per_sec=%.6e\n",
                  m.scheduler.c_str(), m.tasks, m.tasks_per_sec);
      results.push_back(m);
    }
  }

  const char* mode = smoke      ? "smoke"
                     : smoke_1m ? "smoke-1m"
                     : gate     ? "gate"
                     : write    ? "write-baseline"
                                : "full";
  const std::string json = report_json(results, baseline, mode);
  const std::string path = write_bench_report("perf", json);
  std::printf("wrote %s\n", path.c_str());

  if (smoke || smoke_1m) {
    if (!json_shape_ok(json, results)) return 1;
    std::printf("%s: BENCH_perf.json shape OK\n", mode);
    if (smoke) {
      if (!smoke_parallel_ok()) return 1;
      std::printf("smoke: parallel passes bit-identical to serial\n");
    }
    return 0;
  }

  if (write) {
    if (!write_baseline(baseline_path, results)) return 1;
    std::printf("rewrote cur.* keys of %s\n", baseline_path.c_str());
    return 0;
  }

  if (gate) {
    const double factor = env_factor("CATBATCH_PERF_GATE_FACTOR", 0.5);
    const double mem_factor = env_factor("CATBATCH_PERF_GATE_MEM_FACTOR", 2.0);
    bool ok = true;
    for (const Measurement& m : results) {
      const std::string key = baseline_key("cur", m, throughput_metric(m));
      const double cur = lookup(baseline, key);
      if (cur <= 0.0) {
        std::fprintf(stderr,
                     "gate: FAIL -- baseline has no %s (a stale baseline "
                     "does not excuse the gate).\n",
                     key.c_str());
        ok = false;
        continue;
      }
      const double floor = factor * cur;
      const bool pass = m.tasks_per_sec >= floor;
      std::printf("gate: %-10s n=%-8zu measured=%.3e floor=%.3e (%.2fx "
                  "baseline) %s\n",
                  m.scheduler.c_str(), m.tasks, m.tasks_per_sec, floor,
                  m.tasks_per_sec / cur, pass ? "PASS" : "FAIL");
      ok = ok && pass;

      if (m.bytes_per_task > 0.0) {
        const std::string mem_key = baseline_key("cur", m, "bytes_per_task");
        const double mem_base = lookup(baseline, mem_key);
        if (mem_base <= 0.0) {
          std::fprintf(stderr, "gate: FAIL -- baseline has no %s.\n",
                       mem_key.c_str());
          ok = false;
          continue;
        }
        const double ceiling = mem_factor * mem_base;
        const bool mem_pass = m.bytes_per_task <= ceiling;
        std::printf(
            "gate: %-10s n=%-8zu bytes_per_task=%.1f ceiling=%.1f %s\n",
            m.scheduler.c_str(), m.tasks, m.bytes_per_task, ceiling,
            mem_pass ? "PASS" : "FAIL");
        ok = ok && mem_pass;
      }
    }
    // Parallel ingest must actually pay for itself: on wide-enough hosts
    // the 8-thread 10M ingest has to beat the serial run measured in the
    // same window. Narrower hosts can't exhibit the speedup, so they skip
    // -- loudly, never silently.
    double ingest_serial = 0.0;
    double ingest_par = 0.0;
    for (const Measurement& m : results) {
      if (!m.ingest) continue;
      if (m.scheduler == "ingest") ingest_serial = m.tasks_per_sec;
      if (m.scheduler == "ingest8") ingest_par = m.tasks_per_sec;
    }
    const double need =
        env_factor("CATBATCH_PERF_GATE_INGEST_SPEEDUP", 2.5);
    const unsigned hw = std::thread::hardware_concurrency();
    if (ingest_serial <= 0.0 || ingest_par <= 0.0) {
      std::fprintf(stderr,
                   "gate: FAIL -- ingest tier did not produce both the "
                   "serial and 8-thread measurements.\n");
      ok = false;
    } else if (hw < 8) {
      std::printf(
          "gate: ingest speedup SKIP (host has %u hardware threads, the "
          ">=%.2fx check needs 8; measured %.2fx)\n",
          hw, need, ingest_par / ingest_serial);
    } else {
      const double speedup = ingest_par / ingest_serial;
      const bool pass = speedup >= need;
      std::printf(
          "gate: ingest n=10000000 serial=%.3e par8=%.3e speedup=%.2fx "
          "(need %.2fx) %s\n",
          ingest_serial, ingest_par, speedup, need, pass ? "PASS" : "FAIL");
      ok = ok && pass;
    }
    if (!ok) print_regenerate_hint(argv[0], baseline_path);
    return ok ? 0 : 1;
  }
  return 0;
}
