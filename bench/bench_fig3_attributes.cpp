// E2 — Figure 3 (right): the per-task attribute table of the running
// example, regenerated from the library: t, p, s∞, f∞, λ, χ, ζ. Must match
// the paper row for row.
#include <iostream>

#include "analysis/report.hpp"
#include "core/category.hpp"
#include "core/criticality.hpp"
#include "instances/examples.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace catbatch;
  print_experiment_header(std::cout, "E2",
                          "Figure 3 — attribute table of the running example");

  const TaskGraph g = make_paper_example();
  const auto crit = compute_criticalities(g);
  const auto cats = compute_categories(g, crit);

  TextTable table({"Task", "t", "p", "s_inf", "f_inf", "lambda", "chi",
                   "zeta"});
  for (TaskId id = 0; id < g.size(); ++id) {
    const Task& t = g.task(id);
    table.add_row({t.name, format_number(t.work, 4), std::to_string(t.procs),
                   format_number(crit[id].earliest_start, 4),
                   format_number(crit[id].earliest_finish, 4),
                   std::to_string(cats[id].longitude),
                   std::to_string(cats[id].power_level),
                   format_number(cats[id].value(), 4)});
  }
  std::cout << table.render();
  std::cout << "\nPaper reference values (Figure 3): A:(1,2,ζ4) B:(1,0,ζ1) "
               "C:(1,1,ζ2) D:(1,1,ζ2) E:(1,2,ζ4) F:(7,-1,ζ3.5) G:(7,-1,ζ3.5) "
               "H:(5,0,ζ5) I:(1,2,ζ4) J:(13,-1,ζ6.5) K:(5,0,ζ5) — "
               "(λ, χ, ζ).\n";
  return 0;
}
