// E0 — Figure 2: the dyadic lattice of category values ζ = λ·2^χ. Renders
// the lattice over a time window as ASCII (one row per power level, odd-λ
// points marked 'o', even-λ positions '.', which always have a point
// directly above — the Lemma 2 parity argument), and marks where each task
// of the running example lands.
#include <iostream>
#include <string>

#include "analysis/report.hpp"
#include "core/category.hpp"
#include "core/criticality.hpp"
#include "instances/examples.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace catbatch;
  print_experiment_header(std::cout, "E0",
                          "Figure 2 — the category lattice ζ = λ·2^χ");

  // Window [0, 8], 2 columns per 2^-2 step -> 64 columns.
  constexpr double kWindow = 8.0;
  constexpr int kMinChi = -2;
  constexpr int kMaxChi = 2;
  constexpr std::size_t kCols = 65;

  for (int chi = kMaxChi; chi >= kMinChi; --chi) {
    std::string row(kCols, ' ');
    const double step = category_value(chi, 1);
    for (std::int64_t lambda = 1; static_cast<double>(lambda) * step <=
                                  kWindow;
         ++lambda) {
      const double zeta = category_value(chi, lambda);
      const auto col = static_cast<std::size_t>(
          zeta / kWindow * static_cast<double>(kCols - 1));
      row[col] = (lambda % 2 == 1) ? 'o' : '.';
    }
    std::cout << "chi=" << pad_left(std::to_string(chi), 2) << " |" << row
              << "|\n";
  }
  std::cout << "       0" << repeated(' ', kCols - 3) << "8\n";
  std::cout << "\n'o' = odd longitude (a real category); '.' = even λ — "
               "always has a point directly above (Lemma 2's parity "
               "argument), so no task can have an even longitude.\n";

  // Where the running example's tasks land on the lattice.
  const TaskGraph g = make_paper_example();
  const auto crit = compute_criticalities(g);
  TextTable table({"Task", "interval (s_inf, f_inf)", "category point",
                   "chi", "lambda"});
  for (TaskId id = 0; id < g.size(); ++id) {
    const Category cat = compute_category(crit[id]);
    table.add_row({g.task(id).name,
                   "(" + format_number(crit[id].earliest_start, 4) + ", " +
                       format_number(crit[id].earliest_finish, 4) + ")",
                   format_number(cat.value(), 4),
                   std::to_string(cat.power_level),
                   std::to_string(cat.longitude)});
  }
  std::cout << "\n" << table.render();
  std::cout << "\nShape check: each task's category is the highest lattice "
               "point strictly inside its criticality interval (Figure 2 / "
               "Definition 2); matches Figure 3's table.\n";
  return 0;
}
