// E7a — Figures 8-9 and Lemmas 8-9: the building blocks of the lower-bound
// construction. For X_P(K): measured list-scheduling makespan vs Lemma 8's
// optimal lower bound. For Y^i_P(K): the explicit optimal schedule
// (validated) vs Lemma 9's closed form — equality expected.
#include <iostream>

#include "analysis/report.hpp"
#include "core/bounds.hpp"
#include "instances/adversary.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace catbatch;
  const Time eps = 0x1.0p-8;

  print_experiment_header(std::cout, "E7a",
                          "Figure 8 / Lemma 8 — X_P(K) is hard to schedule");
  {
    TextTable table({"P", "K", "n", "Lb", "T_opt floor (Lemma 8)",
                     "list(fifo)", "catbatch"});
    for (const int P : {3, 4, 5, 6}) {
      const int K = P == 3 ? 3 : 2;
      const XInstance x = make_x_instance(P, K, eps);
      ListScheduler list;
      const SimResult rl = simulate(x.graph, list, P);
      require_valid_schedule(x.graph, rl.schedule, P);
      CatBatchScheduler cat;
      const SimResult rc = simulate(x.graph, cat, P);
      require_valid_schedule(x.graph, rc.schedule, P);
      table.add_row({std::to_string(P), std::to_string(K),
                     std::to_string(x.graph.size()),
                     format_number(makespan_lower_bound(x.graph, P), 3),
                     format_number(x_optimal_lower_bound(P, K), 3),
                     format_number(rl.makespan, 3),
                     format_number(rc.makespan, 3)});
    }
    std::cout << table.render();
    std::cout << "Shape check: every schedule exceeds Lemma 8's floor, which "
                 "is ≈ P times the area/critical-path bound Lb.\n";
  }

  print_experiment_header(std::cout, "E7b",
                          "Figure 9 / Lemma 9 — Y^i_P(K) packs perfectly");
  {
    TextTable table({"P", "i", "K", "n", "closed form (Lemma 9)",
                     "constructed schedule", "Lb"});
    const int P = 4, K = 2;
    for (int i = 0; i < P; ++i) {
      const YInstance y = make_y_instance(P, i, K, eps);
      const Schedule opt = y_optimal_schedule(y);
      require_valid_schedule(y.graph, opt, P);
      table.add_row({std::to_string(P), std::to_string(i), std::to_string(K),
                     std::to_string(y.graph.size()),
                     format_number(y_optimal_makespan(P, i, K, eps), 6),
                     format_number(opt.makespan(), 6),
                     format_number(makespan_lower_bound(y.graph, P), 6)});
    }
    std::cout << table.render();
    std::cout << "Shape check: constructed == closed form == Lb (100% "
                 "utilization, Lemma 9).\n";
  }
  return 0;
}
