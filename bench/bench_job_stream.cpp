// E20 — cluster front-end scenario: a stream of workflow jobs arriving
// over time, scheduled jointly. Reports per-scheduler makespan plus
// per-job response-time statistics (mean / p95-ish max slowdown). Strict
// CatBatch is excluded by design: its batch invariant (Corollary 2)
// assumes the pure precedence model without arrivals; the category-
// priority relaxation is its stream-safe counterpart.
#include <algorithm>
#include <iostream>

#include "analysis/report.hpp"
#include "instances/job_stream.hpp"
#include "sched/backfill.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/relaxed_catbatch.hpp"
#include "sim/validate.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace catbatch;
  print_experiment_header(
      std::cout, "E20",
      "Job streams — workflow DAGs arriving over time (cluster scenario)");

  const int P = 32;
  for (const double interarrival : {2.0, 8.0, 32.0}) {
    std::cout << "\nmean inter-arrival " << format_number(interarrival, 0)
              << " (16 jobs, P=" << P << ")\n";
    TextTable table({"scheduler", "makespan", "mean slowdown",
                     "max slowdown", "mean response"});
    RelaxedCatBatch relaxed;
    ListScheduler fifo;
    ListScheduler lpt(ListSchedulerOptions{ListPriority::LongestFirst,
                                           false});
    EasyBackfill easy;
    OnlineScheduler* lineup[] = {&relaxed, &fifo, &lpt, &easy};
    for (OnlineScheduler* sched : lineup) {
      Rng rng(99);  // identical stream for every scheduler
      JobStream stream = random_job_stream(rng, 16, interarrival, P);
      const SimResult r = simulate(stream, *sched, P);
      require_valid_schedule(stream.realized_graph(), r.schedule, P);
      const auto jobs = per_job_metrics(stream, r, P);
      double mean_slow = 0.0, max_slow = 0.0, mean_resp = 0.0;
      for (const JobMetrics& m : jobs) {
        mean_slow += m.slowdown;
        max_slow = std::max(max_slow, m.slowdown);
        mean_resp += static_cast<double>(m.response_time);
      }
      mean_slow /= static_cast<double>(jobs.size());
      mean_resp /= static_cast<double>(jobs.size());
      table.add_row({sched->name(), format_number(r.makespan, 2),
                     format_number(mean_slow, 3),
                     format_number(max_slow, 3),
                     format_number(mean_resp, 2)});
    }
    std::cout << table.render();
  }
  std::cout << "\nShape check: slowdowns shrink as arrivals spread out "
               "(less contention); the category-priority relaxation stays "
               "competitive with the classic queueing policies on every "
               "load level.\n";
  return 0;
}
