// E16 — ablations over the design choices DESIGN.md calls out:
//  (a) the in-batch order of ScheduleIndep (paper: "any arbitrary order");
//  (b) the batch-completion barrier (strict CatBatch vs RelaxedCatBatch);
//  (c) the scheduling substrate for comparison: list family, EASY
//      backfilling, and the offline divide-and-conquer twin.
#include <iostream>

#include "analysis/report.hpp"
#include "core/bounds.hpp"
#include "instances/examples.hpp"
#include "instances/random_dags.hpp"
#include "instances/workloads.hpp"
#include "sched/backfill.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/divide_conquer.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/rank_scheduler.hpp"
#include "sched/relaxed_catbatch.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "sim/validate.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

namespace {

using namespace catbatch;

void run_instance(const std::string& label, const TaskGraph& g, int procs) {
  std::cout << "\n" << label << " (" << g.size() << " tasks, P=" << procs
            << ", Lb=" << format_number(makespan_lower_bound(g, procs), 3)
            << ")\n";
  TextTable table({"variant", "makespan", "T/Lb", "util"});
  const Time lb = makespan_lower_bound(g, procs);

  const auto row = [&](OnlineScheduler& sched) {
    const SimResult r = simulate(g, sched, procs);
    require_valid_schedule(g, r.schedule, procs);
    table.add_row({sched.name(), format_number(r.makespan, 3),
                   format_number(static_cast<double>(r.makespan / lb), 3),
                   format_number(r.average_utilization(procs), 3)});
  };

  // (a) in-batch orders.
  for (const BatchOrder order :
       {BatchOrder::Arrival, BatchOrder::WidestFirst, BatchOrder::LongestFirst,
        BatchOrder::ShortestFirst}) {
    CatBatchOptions options;
    options.batch_order = order;
    CatBatchScheduler sched(options);
    row(sched);
  }
  table.add_separator();

  // (b) the barrier and the lattice anchor.
  RelaxedCatBatch relaxed;
  row(relaxed);
  for (const Time shift : {0.5, 2.0}) {
    CatBatchOptions options;
    options.origin_shift = shift;
    options.name_override =
        "catbatch(shift=" + format_number(shift, 2) + ")";
    CatBatchScheduler shifted(options);
    row(shifted);
  }
  table.add_separator();

  // (c) baselines.
  ListScheduler fifo;
  ListScheduler lpt(ListSchedulerOptions{ListPriority::LongestFirst, false});
  EasyBackfill easy;
  RankScheduler rank(g);
  row(fifo);
  row(lpt);
  row(easy);
  row(rank);
  const DivideConquerResult dc = divide_conquer_schedule(g, procs);
  require_valid_schedule(g, dc.schedule, procs);
  table.add_row(
      {"divide-conquer (offline)", format_number(dc.schedule.makespan(), 3),
       format_number(static_cast<double>(dc.schedule.makespan() / lb), 3),
       format_number(average_utilization(g, dc.schedule, procs), 3)});

  std::cout << table.render();
}

}  // namespace

int main() {
  using namespace catbatch;
  print_experiment_header(std::cout, "E16",
                          "Ablations — in-batch order, barrier, baselines");

  Rng rng(31337);
  RandomTaskParams params;
  params.procs.max_procs = 16;
  run_instance("layered-200", random_layered_dag(rng, 200, 14, params), 16);
  run_instance("cholesky-10", cholesky_dag(10), 16);
  run_instance("intro-P32", make_intro_instance(32).graph, 32);

  std::cout << "\nShape check: the in-batch order changes makespans only "
               "marginally (Lemma 6 holds for any order); removing the "
               "barrier helps on benign DAGs but forfeits the guarantee "
               "(see the intro instance, where relaxed collapses to ASAP).\n";
  return 0;
}
