// E9 — Theorem 2: CatBatch's measured ratio as the task-length spread M/m
// grows, against the log2(M/m)+6 curve. Equal lengths (M/m = 1) must stay
// under the constant 6.
//
// Each spread level is an instance family on the parallel sweep engine
// (--jobs N / CATBATCH_JOBS); per-run ratio/theorem2-bound margins use the
// *realized* M/m of each instance. Emits BENCH_thm2_ratio_vs_mm.json.
#include <iostream>

#include "analysis/experiment.hpp"
#include "analysis/json_report.hpp"
#include "analysis/report.hpp"
#include "core/lmatrix.hpp"
#include "instances/random_dags.hpp"
#include "sched/registry.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main(int argc, char** argv) {
  using namespace catbatch;
  print_experiment_header(
      std::cout, "E9",
      "Theorem 2 — max measured T/Lb vs log2(M/m)+6 over a length-spread "
      "sweep");

  SweepOptions options;
  options.procs = 16;
  options.trials = 8;
  options.base_seed = 1009;
  options.jobs = bench_jobs(argc, argv);
  std::cout << "jobs: " << options.jobs << "\n";

  const std::size_t n = 300;
  std::vector<InstanceFamily> families;
  for (const double spread : {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0}) {
    RandomTaskParams params;
    params.work.law = WorkDistribution::Law::LogUniform;
    params.work.min_work = 1.0;
    params.work.max_work = spread;
    params.procs.max_procs = options.procs;
    families.push_back(InstanceFamily{
        "spread=" + format_number(spread, 0), [n, params](Rng& rng) {
          return random_layered_dag(rng, n, 20, params);
        }});
  }

  const std::vector<NamedScheduler> lineup = {
      NamedScheduler{"catbatch", [] { return make_scheduler("catbatch"); }}};
  const std::vector<FamilySweep> grid = sweep_grid(families, lineup, options);

  TextTable table({"family", "n", "max T/Lb", "mean T/Lb",
                   "max ratio/bound"});
  double wall_ms = 0.0;
  for (const FamilySweep& fs : grid) {
    const RatioAggregate& agg = fs.aggregates.front();
    table.add_row({fs.family, std::to_string(n),
                   format_number(agg.max_ratio, 3),
                   format_number(agg.mean_ratio, 3),
                   format_number(agg.max_theorem2_margin, 3)});
    wall_ms += fs.wall_ms;
  }
  std::cout << table.render();

  const std::string path = write_bench_report(
      "thm2_ratio_vs_mm",
      sweep_report_json("thm2_ratio_vs_mm", options, grid, wall_ms));
  std::cout << "\nwrote " << path << "\n";
  std::cout << "\nShape check: the measured ratio grows (at most) "
               "logarithmically with the spread and never crosses the "
               "Theorem 2 curve (max ratio/bound < 1, bound realized per "
               "instance); at M/m = 1 it sits below the constant 6.\n";
  return 0;
}
