// E9 — Theorem 2: CatBatch's measured ratio as the task-length spread M/m
// grows, against the log2(M/m)+6 curve. Equal lengths (M/m = 1) must stay
// under the constant 6.
#include <algorithm>
#include <iostream>

#include "core/bounds.hpp"
#include "core/lmatrix.hpp"
#include "analysis/report.hpp"
#include "instances/random_dags.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace catbatch;
  print_experiment_header(
      std::cout, "E9",
      "Theorem 2 — max measured T/Lb vs log2(M/m)+6 over a length-spread "
      "sweep");

  const int procs = 16;
  TextTable table({"M/m", "n", "max T/Lb", "mean T/Lb", "log2(M/m)+6",
                   "max ratio/bound"});
  for (const double spread : {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0}) {
    RandomTaskParams params;
    params.work.law = WorkDistribution::Law::LogUniform;
    params.work.min_work = 1.0;
    params.work.max_work = spread;
    params.procs.max_procs = procs;

    double max_ratio = 0.0, sum_ratio = 0.0;
    int runs = 0;
    double realized_bound = theorem2_bound(spread, 1.0);
    const std::size_t n = 300;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      Rng rng(seed * 1009 + static_cast<std::uint64_t>(spread));
      const TaskGraph g =
          random_layered_dag(rng, n, 20, params);
      CatBatchScheduler sched;
      const SimResult r = simulate(g, sched, procs);
      require_valid_schedule(g, r.schedule, procs);
      const InstanceBounds b = compute_bounds(g, procs);
      const double ratio = static_cast<double>(r.makespan) /
                           static_cast<double>(b.lower_bound());
      realized_bound = theorem2_bound(b.max_work, b.min_work);
      max_ratio = std::max(max_ratio, ratio);
      sum_ratio += ratio;
      ++runs;
    }
    table.add_row({format_number(spread, 0), std::to_string(n),
                   format_number(max_ratio, 3),
                   format_number(sum_ratio / runs, 3),
                   format_number(realized_bound, 3),
                   format_number(max_ratio / realized_bound, 3)});
  }
  std::cout << table.render();
  std::cout << "\nShape check: the measured ratio grows (at most) "
               "logarithmically with the spread and never crosses the "
               "Theorem 2 curve; at M/m = 1 it sits below the constant 6.\n";
  return 0;
}
