// E9 — Theorem 2: CatBatch's measured ratio as the task-length spread M/m
// grows, against the log2(M/m)+6 curve. Equal lengths (M/m = 1) must stay
// under the constant 6.
//
// Each spread level is an instance family on the parallel sweep engine
// (--jobs N / CATBATCH_JOBS); per-run ratio/theorem2-bound margins use the
// *realized* M/m of each instance. Emits BENCH_thm2_ratio_vs_mm.json, whose
// "metrics" object (docs/OBSERVABILITY.md) carries the per-run ratio
// histogram plus bench.probe.* gauges from one instrumented run at the
// widest spread; it is bit-identical run to run and across job counts.
#include <cstdint>
#include <iostream>

#include "analysis/experiment.hpp"
#include "analysis/json_report.hpp"
#include "analysis/report.hpp"
#include "core/lmatrix.hpp"
#include "instances/random_dags.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "sched/registry.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main(int argc, char** argv) {
  using namespace catbatch;
  print_experiment_header(
      std::cout, "E9",
      "Theorem 2 — max measured T/Lb vs log2(M/m)+6 over a length-spread "
      "sweep");

  SweepOptions options;
  options.procs = 16;
  options.trials = 8;
  options.base_seed = 1009;
  options.jobs = bench_jobs(argc, argv);
  std::cout << "jobs: " << options.jobs << "\n";

  const std::size_t n = 300;
  std::vector<InstanceFamily> families;
  for (const double spread : {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0}) {
    RandomTaskParams params;
    params.work.law = WorkDistribution::Law::LogUniform;
    params.work.min_work = 1.0;
    params.work.max_work = spread;
    params.procs.max_procs = options.procs;
    families.push_back(InstanceFamily{
        "spread=" + format_number(spread, 0), [n, params](Rng& rng) {
          return random_layered_dag(rng, n, 20, params);
        }});
  }

  options.keep_runs = true;  // per-run records feed the metrics histogram
  const std::vector<NamedScheduler> lineup = {
      NamedScheduler{"catbatch", [] { return make_scheduler("catbatch"); }}};
  const std::vector<FamilySweep> grid = sweep_grid(families, lineup, options);

  // Observability sidecar: every run's achieved ratio as one histogram, the
  // worst Theorem 2 margin as a gauge (schemas in docs/OBSERVABILITY.md).
  MetricsRegistry bench_metrics;
  static constexpr double kRatioBounds[] = {1.0, 1.25, 1.5, 2.0,
                                            3.0, 4.0,  6.0, 8.0};
  const auto ratio_hist =
      bench_metrics.histogram("bench.catbatch.ratio", kRatioBounds);
  const auto margin_max =
      bench_metrics.gauge("bench.catbatch.max_theorem2_margin");

  TextTable table({"family", "n", "max T/Lb", "mean T/Lb",
                   "max ratio/bound"});
  double wall_ms = 0.0;
  for (const FamilySweep& fs : grid) {
    const RatioAggregate& agg = fs.aggregates.front();
    table.add_row({fs.family, std::to_string(n),
                   format_number(agg.max_ratio, 3),
                   format_number(agg.mean_ratio, 3),
                   format_number(agg.max_theorem2_margin, 3)});
    wall_ms += fs.wall_ms;
    for (const RunRecord& run : fs.runs) {
      bench_metrics.observe(ratio_hist, run.metrics.ratio);
      if (run.metrics.theorem2_bound > 0.0) {
        bench_metrics.max_of(margin_max,
                             run.metrics.ratio / run.metrics.theorem2_bound);
      }
    }
  }
  std::cout << table.render();

  // One instrumented run at the widest spread: batch count (busy periods)
  // and idle area join the report's metrics object. The probe runs against
  // its own registry so its wall-clock select() histograms stay out of the
  // report — only deterministic bench.probe.* gauges are copied over.
  {
    Rng rng(options.base_seed);
    const TaskGraph probe = families.back().make(rng);
    MetricsRegistry probe_registry;
    auto cat =
        instrument_scheduler(make_scheduler("catbatch"), probe_registry);
    EngineObserver observer(nullptr, &probe_registry);
    SimOptions sim;
    sim.observer = &observer;
    const RunMetrics probe_metrics = evaluate(probe, *cat, options.procs, sim);
    const std::uint64_t batches = probe_registry.counter_value(
        probe_registry.counter("engine.busy_periods"));
    const double idle_area =
        probe_registry.gauge_value(probe_registry.gauge("engine.idle_area"));
    bench_metrics.set(bench_metrics.gauge("bench.probe.ratio"),
                      probe_metrics.ratio);
    bench_metrics.set(bench_metrics.gauge("bench.probe.batches"),
                      static_cast<double>(batches));
    bench_metrics.set(bench_metrics.gauge("bench.probe.idle_area"), idle_area);
    std::cout << "\ninstrumented probe (" << families.back().label
              << "): ratio " << format_number(probe_metrics.ratio, 3)
              << ", batches " << batches << ", idle area "
              << format_number(idle_area, 1) << "\n";
  }

  const std::string path = write_bench_report(
      "thm2_ratio_vs_mm", sweep_report_json("thm2_ratio_vs_mm", options, grid,
                                            wall_ms, &bench_metrics));
  std::cout << "\nwrote " << path << "\n";
  std::cout << "\nShape check: the measured ratio grows (at most) "
               "logarithmically with the spread and never crosses the "
               "Theorem 2 curve (max ratio/bound < 1, bound realized per "
               "instance); at M/m = 1 it sits below the constant 6.\n";
  return 0;
}
