// E19 — flow metrics: makespan is the paper's objective, but waiting time
// and stretch are what a shared system's users feel. This bench quantifies
// the cost of CatBatch's batch barrier in those terms across the workload
// suite — the flow-level content of the Section 7 practicality remark.
#include <iostream>
#include <memory>

#include "analysis/flow_metrics.hpp"
#include "analysis/metrics.hpp"
#include "analysis/report.hpp"
#include "instances/workloads.hpp"
#include "sim/engine.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace catbatch;
  print_experiment_header(
      std::cout, "E19",
      "Flow metrics — waiting time / stretch cost of the batch barrier");

  const int P = 16;
  struct Workload {
    std::string name;
    TaskGraph graph;
  };
  const Workload workloads[] = {
      {"cholesky-10", cholesky_dag(10)},
      {"stencil-24x24", stencil_dag(24, 24, 0.5, 1)},
      {"montage-16", montage_dag(16)},
      {"mapreduce-64/8", map_reduce_dag(64, 8, 1.0, 2.0, 1, 2)},
  };

  for (const Workload& w : workloads) {
    std::cout << "\n" << w.name << " (" << w.graph.size() << " tasks, P="
              << P << ")\n";
    TextTable table({"scheduler", "makespan", "mean wait", "max wait",
                     "mean stretch", "max stretch"});
    for (const NamedScheduler& named : standard_scheduler_lineup()) {
      const auto scheduler = named.make();
      const SimResult r = simulate(w.graph, *scheduler, P);
      const FlowMetrics m = compute_flow_metrics(w.graph, r);
      table.add_row({named.label, format_number(r.makespan, 3),
                     format_number(m.mean_wait, 3),
                     format_number(static_cast<double>(m.max_wait), 3),
                     format_number(m.mean_stretch, 3),
                     format_number(m.max_stretch, 3)});
    }
    std::cout << table.render();
  }

  std::cout << "\nShape check: strict catbatch shows the largest waits "
               "(ready tasks idle behind the barrier); the greedy family "
               "keeps mean stretch near 1. The makespan column matches "
               "E12.\n";
  return 0;
}
