// Fault-tolerance degradation sweep: every registry algorithm under the
// canonical scenario families (crash, sleep, noise — scenario/scenario.hpp)
// on a fixed seeded instance, reporting the contract metrics of
// docs/SCENARIOS.md — degradation vs the clairvoyant fault-free baseline,
// lost-work ratio, recovery latency. Emits BENCH_scenarios.json.
//
// Entry points (see bench/CMakeLists.txt):
//   (default)  full instance sizes, prints one line per (algo, family);
//   --smoke    tiny sizes (sanitizer-safe), validates the JSON shape and
//              feasibility of every run (the catbatch_scenario_smoke ctest
//              gate).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/json_report.hpp"
#include "core/graph.hpp"
#include "scenario/runner.hpp"
#include "sched/registry.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace {

using namespace catbatch;

constexpr int kProcs = 16;

/// Seeded layered DAG for precedence-capable algorithms.
TaskGraph layered_instance(std::size_t layers, std::size_t width,
                           std::uint64_t seed) {
  Rng rng(seed);
  TaskGraph graph;
  std::vector<TaskId> previous;
  for (std::size_t layer = 0; layer < layers; ++layer) {
    std::vector<TaskId> current;
    for (std::size_t k = 0; k < width; ++k) {
      const Time work = rng.uniform_real(0.5, 4.0);
      const int procs = static_cast<int>(rng.uniform_int(1, kProcs / 2));
      const TaskId id = graph.add_task(work, procs);
      for (const TaskId pred : previous) {
        if (rng.bernoulli(0.3)) graph.add_edge(pred, id);
      }
      current.push_back(id);
    }
    previous = std::move(current);
  }
  return graph;
}

/// Independent rigid tasks for the shelf packers.
TaskGraph independent_instance(std::size_t tasks, std::uint64_t seed) {
  Rng rng(seed);
  TaskGraph graph;
  for (std::size_t k = 0; k < tasks; ++k) {
    (void)graph.add_task(rng.uniform_real(0.5, 4.0),
                         static_cast<int>(rng.uniform_int(1, kProcs / 2)));
  }
  return graph;
}

struct Row {
  std::string algo;
  std::string family;
  std::size_t tasks = 0;
  ScenarioMetrics metrics;
};

std::string report_json(const std::vector<Row>& rows, const char* mode) {
  JsonWriter w;
  w.begin_object();
  w.key("bench").value("scenarios");
  w.key("schema").value(1);
  w.key("mode").value(mode);
  w.key("procs").value(kProcs);
  w.key("results").begin_array();
  for (const Row& row : rows) {
    w.begin_object();
    w.key("algo").value(row.algo);
    w.key("family").value(row.family);
    w.key("tasks").value(static_cast<std::uint64_t>(row.tasks));
    w.key("realized_makespan").value(row.metrics.realized_makespan);
    w.key("baseline_makespan").value(row.metrics.baseline_makespan);
    w.key("degradation").value(row.metrics.degradation);
    w.key("lost_work_ratio").value(row.metrics.lost_work_ratio);
    w.key("recovery_latency").value(row.metrics.recovery_latency);
    w.key("kills").value(static_cast<std::uint64_t>(row.metrics.kills));
    w.key("capacity_changes")
        .value(static_cast<std::uint64_t>(row.metrics.capacity_changes));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool json_shape_ok(const std::string& json, std::size_t expected_rows) {
  const char* required[] = {"\"bench\"",       "\"scenarios\"",
                            "\"results\"",     "\"degradation\"",
                            "\"lost_work_ratio\"", "\"recovery_latency\""};
  for (const char* token : required) {
    if (json.find(token) == std::string::npos) {
      std::fprintf(stderr, "BENCH_scenarios.json is missing %s\n", token);
      return false;
    }
  }
  std::size_t rows = 0;
  for (std::size_t at = json.find("\"family\""); at != std::string::npos;
       at = json.find("\"family\"", at + 1)) {
    ++rows;
  }
  if (rows != expected_rows) {
    std::fprintf(stderr, "BENCH_scenarios.json has %zu rows, expected %zu\n",
                 rows, expected_rows);
    return false;
  }
  return !json.empty() && json.front() == '{' && json.back() == '}';
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  const TaskGraph dag = smoke ? layered_instance(2, 8, 20260808)
                              : layered_instance(4, 15, 20260808);
  const TaskGraph independent =
      independent_instance(smoke ? 16 : 60, 20260809);
  const char* families[] = {"crash", "sleep", "noise"};

  std::vector<Row> rows;
  for (const SchedulerEntry& entry : scheduler_registry()) {
    const TaskGraph& graph = entry.independent_only ? independent : dag;
    // A scheduler-independent horizon (the area bound plus the longest
    // task), so every algorithm faces the same script on each family.
    const Time horizon =
        graph.total_area() / static_cast<Time>(kProcs) + graph.max_work();
    for (const char* family : families) {
      const Scenario scenario =
          make_scenario(family, kProcs, horizon, 20260810);
      ScenarioRunOptions options;
      options.mode = ScheduleMode::Counting;
      const ScenarioOutcome outcome =
          run_scenario(graph, entry.name, kProcs, scenario, options);
      check_scenario_feasible(outcome.result, graph, scenario, kProcs);
      Row row;
      row.algo = entry.name;
      row.family = family;
      row.tasks = graph.size();
      row.metrics = outcome.metrics;
      std::printf(
          "%-20s %-6s degradation=%.3f lost_work=%.3f recovery=%.3f "
          "kills=%zu\n",
          entry.name.c_str(), family, row.metrics.degradation,
          row.metrics.lost_work_ratio, row.metrics.recovery_latency,
          row.metrics.kills);
      rows.push_back(std::move(row));
    }
  }

  const std::string json = report_json(rows, smoke ? "smoke" : "full");
  const std::string path = write_bench_report("scenarios", json);
  std::printf("wrote %s\n", path.c_str());

  if (smoke) {
    if (!json_shape_ok(json, rows.size())) return 1;
    std::printf("smoke: BENCH_scenarios.json shape OK\n");
  }
  return 0;
}
