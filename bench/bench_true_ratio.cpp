// E18 — true competitive ratios on small instances: the exact branch-and-
// bound solver provides T_Opt, so we can report T_Alg / T_Opt directly
// (everywhere else the Lb proxy of Section 3.2 is used). Also quantifies
// the Lb-to-OPT slack itself.
#include <algorithm>
#include <iostream>

#include "analysis/report.hpp"
#include "core/bounds.hpp"
#include "instances/random_dags.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/exact.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/relaxed_catbatch.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace catbatch;
  print_experiment_header(
      std::cout, "E18",
      "True ratios T/T_Opt on small instances (exact branch and bound)");

  const int P = 4;
  const std::size_t trials = 40;

  struct Agg {
    double max_ratio = 1.0;
    double sum_ratio = 0.0;
  };
  Agg catbatch_agg, relaxed_agg, fifo_agg, lb_agg;
  std::uint64_t total_nodes = 0;

  Rng rng(271828);
  RandomTaskParams params;
  params.procs.max_procs = P;
  std::size_t solved = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const TaskGraph g = random_layered_dag(rng, 9, 3, params);
    const ExactResult exact = exact_schedule(g, P);
    if (!exact.proven_optimal) continue;
    ++solved;
    total_nodes += exact.nodes_explored;
    require_valid_schedule(g, exact.schedule, P);

    const auto measure = [&](OnlineScheduler& sched, Agg& agg) {
      const Time makespan = simulate(g, sched, P).makespan;
      const double ratio = static_cast<double>(makespan) /
                           static_cast<double>(exact.makespan);
      agg.max_ratio = std::max(agg.max_ratio, ratio);
      agg.sum_ratio += ratio;
    };
    CatBatchScheduler cat;
    RelaxedCatBatch relaxed;
    ListScheduler fifo;
    measure(cat, catbatch_agg);
    measure(relaxed, relaxed_agg);
    measure(fifo, fifo_agg);

    const double lb_slack = static_cast<double>(exact.makespan) /
                            static_cast<double>(makespan_lower_bound(g, P));
    lb_agg.max_ratio = std::max(lb_agg.max_ratio, lb_slack);
    lb_agg.sum_ratio += lb_slack;
  }

  TextTable table({"quantity", "max", "mean"});
  const auto row = [&](const char* label, const Agg& agg) {
    table.add_row({label, format_number(agg.max_ratio, 3),
                   format_number(agg.sum_ratio / static_cast<double>(solved),
                                 3)});
  };
  row("catbatch / OPT", catbatch_agg);
  row("relaxed-catbatch / OPT", relaxed_agg);
  row("list-fifo / OPT", fifo_agg);
  row("OPT / Lb  (lower-bound slack)", lb_agg);
  std::cout << table.render();
  std::cout << "\nsolved " << solved << "/" << trials
            << " instances to optimality, "
            << total_nodes / std::max<std::uint64_t>(1, solved)
            << " search nodes each on average.\n";
  std::cout << "Shape check: true ratios are below the Lb-relative ones "
               "reported elsewhere (OPT >= Lb); all remain far under "
               "log2(n)+3.\n";
  return 0;
}
