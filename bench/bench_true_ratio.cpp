// E18 — true competitive ratios on small instances: the exact branch-and-
// bound solver provides T_Opt, so we can report T_Alg / T_Opt directly
// (everywhere else the Lb proxy of Section 3.2 is used). Also quantifies
// the Lb-to-OPT slack itself.
//
// Trials are independent (per-trial Rng(base_seed + trial) streams) and fan
// out across --jobs workers; the exact solver dominates each trial's cost,
// so the speedup here is close to linear. Aggregation is serial in trial
// order — results are identical for every job count. Emits
// BENCH_true_ratio.json.
#include <algorithm>
#include <chrono>
#include <iostream>

#include "analysis/json_report.hpp"
#include "analysis/report.hpp"
#include "core/bounds.hpp"
#include "instances/random_dags.hpp"
#include "sched/exact.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/table.hpp"
#include "support/text.hpp"
#include "support/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace catbatch;
  print_experiment_header(
      std::cout, "E18",
      "True ratios T/T_Opt on small instances (exact branch and bound)");

  const int P = 4;
  const std::size_t trials = 40;
  const std::uint64_t base_seed = 271828;
  const int jobs = bench_jobs(argc, argv);
  std::cout << "jobs: " << jobs << "\n";

  const char* algos[] = {"catbatch", "relaxed-catbatch", "list-fifo"};
  constexpr std::size_t kAlgos = std::size(algos);

  struct TrialResult {
    bool solved = false;
    std::uint64_t nodes = 0;
    double ratio[kAlgos] = {};
    double lb_slack = 0.0;
    double wall_ms = 0.0;
  };
  std::vector<TrialResult> results(trials);

  const auto t0 = std::chrono::steady_clock::now();
  parallel_for(jobs, trials, [&](std::size_t trial) {
    const auto run_t0 = std::chrono::steady_clock::now();
    Rng rng(base_seed + trial);
    RandomTaskParams params;
    params.procs.max_procs = P;
    const TaskGraph g = random_layered_dag(rng, 9, 3, params);
    const ExactResult exact = exact_schedule(g, P);
    TrialResult& out = results[trial];
    if (!exact.proven_optimal) return;
    out.solved = true;
    out.nodes = exact.nodes_explored;
    require_valid_schedule(g, exact.schedule, P);

    for (std::size_t a = 0; a < kAlgos; ++a) {
      const auto sched = make_scheduler(algos[a]);
      const Time makespan = simulate(g, *sched, P).makespan;
      out.ratio[a] = static_cast<double>(makespan) /
                     static_cast<double>(exact.makespan);
    }
    out.lb_slack = static_cast<double>(exact.makespan) /
                   static_cast<double>(makespan_lower_bound(g, P));
    out.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - run_t0)
                      .count();
  });
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  struct Agg {
    double max_ratio = 1.0;
    double sum_ratio = 0.0;
  };
  Agg aggs[kAlgos], lb_agg;
  std::uint64_t total_nodes = 0;
  std::size_t solved = 0;
  for (const TrialResult& r : results) {  // serial, trial order
    if (!r.solved) continue;
    ++solved;
    total_nodes += r.nodes;
    for (std::size_t a = 0; a < kAlgos; ++a) {
      aggs[a].max_ratio = std::max(aggs[a].max_ratio, r.ratio[a]);
      aggs[a].sum_ratio += r.ratio[a];
    }
    lb_agg.max_ratio = std::max(lb_agg.max_ratio, r.lb_slack);
    lb_agg.sum_ratio += r.lb_slack;
  }

  TextTable table({"quantity", "max", "mean"});
  const auto mean = [&](const Agg& agg) {
    return agg.sum_ratio / static_cast<double>(std::max<std::size_t>(1, solved));
  };
  for (std::size_t a = 0; a < kAlgos; ++a) {
    table.add_row({std::string(algos[a]) + " / OPT",
                   format_number(aggs[a].max_ratio, 3),
                   format_number(mean(aggs[a]), 3)});
  }
  table.add_row({"OPT / Lb  (lower-bound slack)",
                 format_number(lb_agg.max_ratio, 3),
                 format_number(mean(lb_agg), 3)});
  std::cout << table.render();
  std::cout << "\nsolved " << solved << "/" << trials
            << " instances to optimality, "
            << total_nodes / std::max<std::uint64_t>(1, solved)
            << " search nodes each on average.\n";

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("true_ratio");
  w.key("schema").value(1);
  w.key("procs").value(P);
  w.key("trials").value(static_cast<std::uint64_t>(trials));
  w.key("base_seed").value(base_seed);
  w.key("jobs").value(jobs);
  w.key("wall_ms").value(wall_ms);
  w.key("solved").value(static_cast<std::uint64_t>(solved));
  w.key("quantities").begin_array();
  for (std::size_t a = 0; a < kAlgos; ++a) {
    w.begin_object();
    w.key("quantity").value(std::string(algos[a]) + "/opt");
    w.key("max").value(aggs[a].max_ratio);
    w.key("mean").value(mean(aggs[a]));
    w.end_object();
  }
  w.begin_object();
  w.key("quantity").value("opt/lb");
  w.key("max").value(lb_agg.max_ratio);
  w.key("mean").value(mean(lb_agg));
  w.end_object();
  w.end_array();
  w.end_object();
  const std::string path = write_bench_report("true_ratio", w.str());
  std::cout << "wrote " << path << "\n";

  std::cout << "Shape check: true ratios are below the Lb-relative ones "
               "reported elsewhere (OPT >= Lb); all remain far under "
               "log2(n)+3.\n";
  return 0;
}
