// E15 — the paper's Section 7 future-work direction, made concrete: online
// scheduling of *moldable* task graphs by local allotment + CatBatch. The
// table sweeps allotment policies x schedulers over moldable instances and
// reports makespans against the moldable lower bound.
#include <iostream>
#include <memory>

#include "analysis/report.hpp"
#include "moldable/allocation.hpp"
#include "moldable/moldable_instances.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace catbatch;
  print_experiment_header(
      std::cout, "E15",
      "Moldable extension — local allotment x online scheduler");

  const int P = 32;
  const AllotmentPolicy policies[] = {
      AllotmentPolicy::Sequential, AllotmentPolicy::MaxParallel,
      AllotmentPolicy::MinTime, AllotmentPolicy::Efficiency50,
      AllotmentPolicy::SquareRoot};

  struct Instance {
    std::string name;
    MoldableGraph graph;
  };
  Rng rng(77);
  MoldableTaskDistribution dist;
  dist.max_procs = P;
  Instance instances[] = {
      {"random-layered-200", random_moldable_layered(rng, 200, 14, dist)},
      {"moldable-cholesky-10", moldable_cholesky(10, P)},
  };

  for (const Instance& inst : instances) {
    const Time lb = moldable_lower_bound(inst.graph, P);
    std::cout << "\n" << inst.name << " (" << inst.graph.size()
              << " tasks, P=" << P
              << ", moldable Lb=" << format_number(lb, 3) << ")\n";
    TextTable table({"allotment", "catbatch", "list-fifo",
                     "catbatch/Lb", "list/Lb"});
    for (const AllotmentPolicy policy : policies) {
      const TaskGraph rigid = rigidify(inst.graph, P, policy);
      CatBatchScheduler cat;
      ListScheduler fifo;
      const SimResult rc = simulate(rigid, cat, P);
      const SimResult rl = simulate(rigid, fifo, P);
      require_valid_schedule(rigid, rc.schedule, P);
      require_valid_schedule(rigid, rl.schedule, P);
      table.add_row(
          {to_string(policy), format_number(rc.makespan, 3),
           format_number(rl.makespan, 3),
           format_number(static_cast<double>(rc.makespan / lb), 3),
           format_number(static_cast<double>(rl.makespan / lb), 3)});
    }
    std::cout << table.render();
  }

  std::cout << "\nShape check: min-time / efficiency-50 allotments dominate "
               "the extremes (sequential starves parallelism, max-parallel "
               "wastes area) — the classic moldable trade-off [4, 24]; the "
               "category machinery composes with any of them.\n";
  return 0;
}
