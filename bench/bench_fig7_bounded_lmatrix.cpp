// E6 — Figure 7: the L-matrix with and without task-length bounds
// (m = 0.9, M = 2.3) for C = 6.8, showing the Reduced / Unchanged /
// Impossible row classification used in the proof of Theorem 2.
#include <iostream>

#include "analysis/report.hpp"
#include "core/lmatrix.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace catbatch;
  print_experiment_header(
      std::cout, "E6",
      "Figure 7 — bounded L*-matrix (C = 6.8, m = 0.9, M = 2.3)");

  const double C = 6.8, m = 0.9, M = 2.3;
  const LMatrix L(C);
  constexpr std::size_t kRows = 5;
  constexpr std::size_t kCols = 8;

  const auto print_matrix = [&](bool bounded) {
    TextTable table({"chi", "1", "3", "5", "7", "9", "11", "13", "15",
                     "class"});
    for (std::size_t i = 1; i <= kRows; ++i) {
      std::vector<std::string> row;
      row.push_back(std::to_string(L.category_at(i, 1).power_level));
      bool any_reduced = false, any_positive = false;
      for (std::size_t j = 1; j <= kCols; ++j) {
        const Category cat = L.category_at(i, j);
        const Time plain = category_length(cat, C);
        const Time value =
            bounded ? bounded_category_length(cat, C, m, M) : plain;
        // A row is "Reduced" when lengths get clipped to M (top rows);
        // zeroed entries below m do not change the row's class (Figure 7).
        if (bounded && plain > M && value == M) any_reduced = true;
        if (value > 0.0) any_positive = true;
        row.push_back(format_number(value, 4));
      }
      const char* klass = "";
      if (bounded) klass = !any_positive ? "I" : (any_reduced ? "R" : "U");
      row.emplace_back(klass);
      table.add_row(std::move(row));
    }
    std::cout << table.render();
  };

  std::cout << "Unbounded L(C):\n";
  print_matrix(false);
  std::cout << "\nBounded L*(C) with m = 0.9, M = 2.3 "
               "(R = reduced to M, U = unchanged, I = impossible):\n";
  print_matrix(true);

  std::cout << "\nPaper reference (Figure 7, right): rows 2.3 | 2.3, 2.3 | "
               "2, 2, 2 | 1 x6 | 0 ... with classes R, R, U, U, I.\n";
  return 0;
}
