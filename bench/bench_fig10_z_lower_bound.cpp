// E7c/E11 — Figure 10 and Theorems 3-4: the adaptive adversary Z^Alg_P(K).
// For each scheduler we regenerate its personal adversary instance, measure
// the online makespan, build Lemma 11's offline two-phase schedule on the
// realized graph (validated), and report the online/offline gap against the
// analytic curves (P+1)/(4+8Pε) and log2(n)/5.
//
// Every E7c run is instrumented (obs/observer.hpp): per-run gaps, batch
// counts (busy periods) and idle areas land in a MetricsRegistry written as
// BENCH_fig10_z_lower_bound.json (schema in docs/OBSERVABILITY.md; the
// engine.* counters aggregate over all runs, the z.P<P>.<scheduler>.*
// gauges are per run).
#include <cmath>
#include <iostream>

#include "analysis/json_report.hpp"
#include "analysis/report.hpp"
#include "core/bounds.hpp"
#include "core/lmatrix.hpp"
#include "instances/adversary.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_export.hpp"
#include "obs/observer.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/relaxed_catbatch.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace catbatch;
  const Time eps = 0x1.0p-8;
  const int K = 2;

  print_experiment_header(
      std::cout, "E7c",
      "Figure 10 / Theorem 3 — adaptive adversary Z^Alg_P(2), sweep over P");

  MetricsRegistry metrics;
  const auto busy_periods = metrics.counter("engine.busy_periods");

  TextTable table({"P", "n", "scheduler", "T_online", "T_offline",
                   "gap", "Lemma10 floor", "log2(n)/5", "(P+1)/(4+8Pe)"});
  for (const int P : {2, 3, 4, 5, 6}) {
    const auto run = [&](OnlineScheduler& sched) {
      ZAdversarySource source(P, K, eps);
      EngineObserver observer(nullptr, &metrics);
      SimOptions sim;
      sim.observer = &observer;
      const std::uint64_t batches_before = metrics.counter_value(busy_periods);
      const SimResult online = simulate(source, sched, P, sim);
      require_valid_schedule(source.realized_graph(), online.schedule, P);
      const Schedule offline = z_offline_schedule(source);
      require_valid_schedule(source.realized_graph(), offline, P);
      const std::size_t n = source.realized_graph().size();
      const double gap = static_cast<double>(online.makespan) /
                         static_cast<double>(offline.makespan());
      // Per-run observability: gap, batch count, idle area under unique
      // names (the shared engine.* counters keep aggregating across runs).
      const std::string prefix =
          "z.P" + std::to_string(P) + "." + sched.name();
      metrics.set(metrics.gauge(prefix + ".gap"), gap);
      metrics.set(metrics.gauge(prefix + ".batches"),
                  static_cast<double>(metrics.counter_value(busy_periods) -
                                      batches_before));
      metrics.set(metrics.gauge(prefix + ".idle_area"),
                  metrics.gauge_value(metrics.gauge("engine.idle_area")));
      table.add_row(
          {std::to_string(P), std::to_string(n), sched.name(),
           format_number(online.makespan, 2),
           format_number(offline.makespan(), 2), format_number(gap, 3),
           format_number(z_online_lower_bound(P, K), 2),
           format_number(theorem3_bound_n(n), 3),
           format_number((P + 1.0) /
                             (2.0 * (2.0 + 4.0 * P * static_cast<double>(eps))),
                         3)});
    };
    CatBatchScheduler cat;
    ListScheduler fifo;
    RelaxedCatBatch relaxed;
    run(cat);
    run(fifo);
    run(relaxed);
    table.add_separator();
  }
  std::cout << table.render();

  {
    JsonWriter w;
    w.begin_object();
    w.key("bench").value("fig10_z_lower_bound");
    w.key("schema").value(1);
    w.key("K").value(K);
    w.key("metrics");
    write_metrics_object(w, metrics);
    w.end_object();
    const std::string path =
        write_bench_report("fig10_z_lower_bound", w.str());
    std::cout << "\nwrote " << path << "\n";
  }

  print_experiment_header(
      std::cout, "E11",
      "Theorem 4 — gap approaches P/2 for large K (list scheduling)");
  TextTable t4({"P", "K", "gap", "P/2"});
  for (const int P : {3, 4}) {
    for (const int Kbig : {4, 8, 16}) {
      ZAdversarySource source(P, Kbig, 0x1.0p-12);
      ListScheduler sched;
      const SimResult online = simulate(source, sched, P);
      const Schedule offline = z_offline_schedule(source);
      t4.add_row({std::to_string(P), std::to_string(Kbig),
                  format_number(static_cast<double>(online.makespan) /
                                    static_cast<double>(offline.makespan()),
                                3),
                  format_number(P / 2.0, 2)});
    }
  }
  std::cout << t4.render();
  std::cout << "\nShape check: every online gap clears the analytic floors; "
               "the Theorem 4 gaps drift toward P/2 as K grows. Note the "
               "offline column is Lemma 11's *constructed feasible* "
               "schedule, so the true optimal gap is at least as large.\n";
  return 0;
}
