// E17 — Section 2.3's first online setting: independent rigid tasks with
// release times, where greedy list scheduling is 2-competitive
// (Naroska & Schwiegelshohn; also Johannes). We stream random task sets
// with random releases through the engine and report the measured ratio
// against the release-aware lower bound
//     Lb_r = max(A/P, max_i (r_i + t_i)).
#include <algorithm>
#include <iostream>
#include <vector>

#include "analysis/report.hpp"
#include "instances/random_dags.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

namespace {

using namespace catbatch;

class ReleaseStream final : public InstanceSource {
 public:
  ReleaseStream(std::uint64_t seed, std::size_t count, int max_procs,
                double release_span)
      : seed_(seed),
        count_(count),
        max_procs_(max_procs),
        release_span_(release_span) {}

  std::vector<SourceTask> start() override {
    graph_ = TaskGraph{};
    releases_.clear();
    Rng rng(seed_);
    RandomTaskParams params;
    params.procs.max_procs = max_procs_;
    std::vector<SourceTask> out;
    for (std::size_t k = 0; k < count_; ++k) {
      const Time work = draw_work(rng, params.work);
      const int procs = draw_procs(rng, params.procs);
      const Time release = quantize_time(
          rng.uniform_real(0.0, release_span_) + 0x1.0p-20);
      graph_.add_task(work, procs);
      SourceTask st;
      st.work = work;
      st.procs = procs;
      st.release = release;
      releases_.push_back(release);
      out.push_back(std::move(st));
    }
    return out;
  }
  std::vector<SourceTask> on_complete(TaskId, Time) override { return {}; }
  const TaskGraph& realized_graph() const override { return graph_; }
  [[nodiscard]] const std::vector<Time>& releases() const {
    return releases_;
  }

 private:
  std::uint64_t seed_;
  std::size_t count_;
  int max_procs_;
  double release_span_;
  TaskGraph graph_;
  std::vector<Time> releases_;
};

}  // namespace

int main() {
  print_experiment_header(
      std::cout, "E17",
      "Release times (§2.3) — greedy list scheduling vs release-aware Lb");

  const int P = 16;
  TextTable table({"release span", "n", "max T/Lb_r", "mean T/Lb_r",
                   "paper bound"});
  for (const double span : {0.0, 4.0, 16.0, 64.0}) {
    double max_ratio = 0.0, sum = 0.0;
    int runs = 0;
    const std::size_t n = 300;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      ReleaseStream source(seed * 101, n, P, span);
      ListScheduler greedy;
      const SimResult r = simulate(source, greedy, P);
      require_valid_schedule(source.realized_graph(), r.schedule, P);
      // Release-aware lower bound.
      Time lb = source.realized_graph().total_area() / P;
      for (TaskId id = 0; id < source.realized_graph().size(); ++id) {
        lb = std::max(lb, source.releases()[id] +
                              source.realized_graph().task(id).work);
        // Starts must respect releases (engine guarantee; re-checked).
        if (r.schedule.entry_for(id).start < source.releases()[id]) {
          std::cerr << "release violated!\n";
          return 1;
        }
      }
      const double ratio = static_cast<double>(r.makespan) /
                           static_cast<double>(lb);
      max_ratio = std::max(max_ratio, ratio);
      sum += ratio;
      ++runs;
    }
    table.add_row({format_number(span, 0), std::to_string(n),
                   format_number(max_ratio, 3), format_number(sum / runs, 3),
                   "2 (vs OPT)"});
  }
  std::cout << table.render();
  std::cout << "\nShape check: measured ratios stay near 1 and well under "
               "the 2-competitive guarantee (which is proved against OPT "
               ">= Lb_r); growing release spans stretch the schedule but "
               "greedy absorbs arrivals without pathologies.\n";
  return 0;
}
