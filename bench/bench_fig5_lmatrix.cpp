// E4 — Figure 5: the L-matrix L(C) and the corresponding category values
// for C = 6.8, printed exactly in the paper's row/column layout (rows are
// power levels descending from χ = X, columns are odd longitudes).
#include <iostream>

#include "analysis/report.hpp"
#include "core/lmatrix.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace catbatch;
  print_experiment_header(std::cout, "E4", "Figure 5 — L-matrix for C = 6.8");

  const LMatrix L(6.8);
  constexpr std::size_t kRows = 5;
  constexpr std::size_t kCols = 8;

  std::cout << "Left: lengths ℓ_{i,j} = L_ζ  (X = " << L.X() << ")\n";
  {
    TextTable table({"chi \\ lambda", "1", "3", "5", "7", "9", "11", "13",
                     "15"});
    for (std::size_t i = 1; i <= kRows; ++i) {
      std::vector<std::string> row;
      row.push_back(std::to_string(L.category_at(i, 1).power_level));
      for (std::size_t j = 1; j <= kCols; ++j) {
        row.push_back(format_number(L.at(i, j), 4));
      }
      table.add_row(std::move(row));
    }
    std::cout << table.render();
  }

  std::cout << "\nRight: category values ζ = λ·2^χ\n";
  {
    TextTable table({"chi \\ lambda", "1", "3", "5", "7", "9", "11", "13",
                     "15"});
    for (std::size_t i = 1; i <= kRows; ++i) {
      std::vector<std::string> row;
      row.push_back(std::to_string(L.category_at(i, 1).power_level));
      for (std::size_t j = 1; j <= kCols; ++j) {
        row.push_back(format_number(L.category_at(i, j).value(), 4));
      }
      table.add_row(std::move(row));
    }
    std::cout << table.render();
  }

  std::cout << "\nPaper reference (Figure 5, left): rows 6.8 | 4, 2.8 | "
               "2, 2, 2 | 1 x6, 0.8 | 0.5 x8... — zeros mark categories with "
               "ζ >= C.\n";
  return 0;
}
