// E8 — Theorem 1: CatBatch's measured competitive ratio (against Lb) over
// a size sweep of random DAG families, compared to the log2(n)+3 curve and
// to the list-scheduling baselines.
//
// Runs the (family x scheduler x seed) cross product on the parallel sweep
// engine (--jobs N / CATBATCH_JOBS, default hardware concurrency; results
// are bit-identical for every job count) and emits the aggregates plus
// wall-clock timings as BENCH_thm1_ratio_vs_n.json. The report's "metrics"
// object (docs/OBSERVABILITY.md) carries per-run achieved-ratio histograms
// for CatBatch plus bench.probe.* gauges (batch count, idle area) from one
// fully instrumented run on the largest instance; like every other sweep
// aggregate it is bit-identical run to run and across job counts.
#include <algorithm>
#include <cstdint>
#include <iostream>

#include "analysis/experiment.hpp"
#include "analysis/json_report.hpp"
#include "analysis/report.hpp"
#include "core/lmatrix.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "sched/registry.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main(int argc, char** argv) {
  using namespace catbatch;
  print_experiment_header(
      std::cout, "E8",
      "Theorem 1 — max measured T/Lb vs log2(n)+3 over random families");

  SweepOptions options;
  options.procs = 16;
  options.trials = 5;
  options.jobs = bench_jobs(argc, argv);
  options.keep_runs = true;  // per-run records feed the metrics histograms
  std::cout << "jobs: " << options.jobs << "\n";

  // Observability sidecar for the JSON report: the achieved ratio of every
  // CatBatch run as a histogram, the worst Theorem 1 margin as a gauge.
  MetricsRegistry bench_metrics;
  static constexpr double kRatioBounds[] = {1.0, 1.25, 1.5, 2.0,
                                            3.0, 4.0,  6.0, 8.0};
  const auto ratio_hist =
      bench_metrics.histogram("bench.catbatch.ratio", kRatioBounds);
  const auto margin_max =
      bench_metrics.gauge("bench.catbatch.max_theorem1_margin");

  const auto lineup = standard_scheduler_lineup();
  std::vector<FamilySweep> report;
  double wall_ms = 0.0;

  for (const std::size_t n : {16u, 64u, 256u, 1024u}) {
    std::cout << "\nn ≈ " << n << " (P = " << options.procs << ", "
              << options.trials << " seeds per family, bound log2(n)+3 = "
              << format_number(theorem1_bound(n), 3) << ")\n";
    options.base_seed = 42 + n;
    const auto families = standard_families(n, options.procs);
    const std::vector<FamilySweep> grid =
        sweep_grid(families, lineup, options);

    TextTable table({"family", "scheduler", "max T/Lb", "mean T/Lb",
                     "max ratio/bound"});
    for (const FamilySweep& fs : grid) {
      for (const RatioAggregate& agg : fs.aggregates) {
        // Keep the table readable: only CatBatch + two baselines.
        if (agg.scheduler != "catbatch" &&
            agg.scheduler != "relaxed-catbatch" &&
            agg.scheduler != "list-fifo") {
          continue;
        }
        table.add_row({fs.family, agg.scheduler,
                       format_number(agg.max_ratio, 3),
                       format_number(agg.mean_ratio, 3),
                       format_number(agg.max_theorem1_margin, 3)});
      }
      table.add_separator();

      for (const RunRecord& run : fs.runs) {
        if (run.scheduler != "catbatch") continue;
        bench_metrics.observe(ratio_hist, run.metrics.ratio);
        if (run.metrics.theorem1_bound > 0.0) {
          bench_metrics.max_of(
              margin_max, run.metrics.ratio / run.metrics.theorem1_bound);
        }
      }

      FamilySweep labeled = fs;
      labeled.family = fs.family + "/n=" + std::to_string(n);
      wall_ms += labeled.wall_ms;
      report.push_back(std::move(labeled));
    }
    std::cout << table.render();
  }

  // One fully instrumented CatBatch run on the largest layered instance. The
  // probe gets its own registry — its select() histograms carry wall-clock
  // values, which must not leak into the report (the merged "metrics" object
  // stays bit-identical run to run, like every other sweep aggregate). Only
  // the deterministic results are copied over as bench.probe.* gauges.
  {
    Rng rng(42 + 1024);
    const TaskGraph probe =
        standard_families(1024, options.procs).front().make(rng);
    MetricsRegistry probe_registry;
    auto cat =
        instrument_scheduler(make_scheduler("catbatch"), probe_registry);
    EngineObserver observer(nullptr, &probe_registry);
    SimOptions sim;
    sim.observer = &observer;
    const RunMetrics probe_metrics =
        evaluate(probe, *cat, options.procs, sim);
    const std::uint64_t batches = probe_registry.counter_value(
        probe_registry.counter("engine.busy_periods"));
    const double idle_area =
        probe_registry.gauge_value(probe_registry.gauge("engine.idle_area"));
    bench_metrics.set(bench_metrics.gauge("bench.probe.ratio"),
                      probe_metrics.ratio);
    bench_metrics.set(bench_metrics.gauge("bench.probe.batches"),
                      static_cast<double>(batches));
    bench_metrics.set(bench_metrics.gauge("bench.probe.idle_area"), idle_area);
    std::cout << "\ninstrumented probe (layered, n = " << probe.size()
              << "): ratio " << format_number(probe_metrics.ratio, 3)
              << ", batches " << batches << ", idle area "
              << format_number(idle_area, 1) << "\n";
  }

  const std::string path = write_bench_report(
      "thm1_ratio_vs_n", sweep_report_json("thm1_ratio_vs_n", options, report,
                                           wall_ms, &bench_metrics));
  std::cout << "\nwrote " << path << " (" << format_number(wall_ms, 1)
            << " ms of sweeps at " << options.jobs << " jobs)\n";
  std::cout << "\nShape check: catbatch's \"max ratio/bound\" stays <= 1 at "
               "every size (Theorem 1 is a worst-case guarantee; typical "
               "ratios are far below it). Greedy baselines usually win on "
               "benign instances but carry no o(P) guarantee.\n";
  return 0;
}
