// E8 — Theorem 1: CatBatch's measured competitive ratio (against Lb) over
// a size sweep of random DAG families, compared to the log2(n)+3 curve and
// to the list-scheduling baselines.
//
// Runs the (family x scheduler x seed) cross product on the parallel sweep
// engine (--jobs N / CATBATCH_JOBS, default hardware concurrency; results
// are bit-identical for every job count) and emits the aggregates plus
// wall-clock timings as BENCH_thm1_ratio_vs_n.json.
#include <algorithm>
#include <iostream>

#include "analysis/experiment.hpp"
#include "analysis/json_report.hpp"
#include "analysis/report.hpp"
#include "core/lmatrix.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main(int argc, char** argv) {
  using namespace catbatch;
  print_experiment_header(
      std::cout, "E8",
      "Theorem 1 — max measured T/Lb vs log2(n)+3 over random families");

  SweepOptions options;
  options.procs = 16;
  options.trials = 5;
  options.jobs = bench_jobs(argc, argv);
  std::cout << "jobs: " << options.jobs << "\n";

  const auto lineup = standard_scheduler_lineup();
  std::vector<FamilySweep> report;
  double wall_ms = 0.0;

  for (const std::size_t n : {16u, 64u, 256u, 1024u}) {
    std::cout << "\nn ≈ " << n << " (P = " << options.procs << ", "
              << options.trials << " seeds per family, bound log2(n)+3 = "
              << format_number(theorem1_bound(n), 3) << ")\n";
    options.base_seed = 42 + n;
    const auto families = standard_families(n, options.procs);
    const std::vector<FamilySweep> grid =
        sweep_grid(families, lineup, options);

    TextTable table({"family", "scheduler", "max T/Lb", "mean T/Lb",
                     "max ratio/bound"});
    for (const FamilySweep& fs : grid) {
      for (const RatioAggregate& agg : fs.aggregates) {
        // Keep the table readable: only CatBatch + two baselines.
        if (agg.scheduler != "catbatch" &&
            agg.scheduler != "relaxed-catbatch" &&
            agg.scheduler != "list-fifo") {
          continue;
        }
        table.add_row({fs.family, agg.scheduler,
                       format_number(agg.max_ratio, 3),
                       format_number(agg.mean_ratio, 3),
                       format_number(agg.max_theorem1_margin, 3)});
      }
      table.add_separator();

      FamilySweep labeled = fs;
      labeled.family = fs.family + "/n=" + std::to_string(n);
      wall_ms += labeled.wall_ms;
      report.push_back(std::move(labeled));
    }
    std::cout << table.render();
  }

  const std::string path = write_bench_report(
      "thm1_ratio_vs_n",
      sweep_report_json("thm1_ratio_vs_n", options, report, wall_ms));
  std::cout << "\nwrote " << path << " (" << format_number(wall_ms, 1)
            << " ms of sweeps at " << options.jobs << " jobs)\n";
  std::cout << "\nShape check: catbatch's \"max ratio/bound\" stays <= 1 at "
               "every size (Theorem 1 is a worst-case guarantee; typical "
               "ratios are far below it). Greedy baselines usually win on "
               "benign instances but carry no o(P) guarantee.\n";
  return 0;
}
