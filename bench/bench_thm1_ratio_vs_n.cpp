// E8 — Theorem 1: CatBatch's measured competitive ratio (against Lb) over
// a size sweep of random DAG families, compared to the log2(n)+3 curve and
// to the list-scheduling baselines.
#include <algorithm>
#include <iostream>

#include "analysis/experiment.hpp"
#include "analysis/report.hpp"
#include "core/lmatrix.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace catbatch;
  print_experiment_header(
      std::cout, "E8",
      "Theorem 1 — max measured T/Lb vs log2(n)+3 over random families");

  const int procs = 16;
  const std::size_t trials = 5;

  for (const std::size_t n : {16u, 64u, 256u, 1024u}) {
    std::cout << "\nn ≈ " << n << " (P = " << procs << ", " << trials
              << " seeds per family, bound log2(n)+3 = "
              << format_number(theorem1_bound(n), 3) << ")\n";
    TextTable table({"family", "scheduler", "max T/Lb", "mean T/Lb",
                     "max ratio/bound"});
    for (const InstanceFamily& family : standard_families(n, procs)) {
      const auto lineup = standard_scheduler_lineup();
      const auto aggregates =
          sweep_family(family, lineup, procs, trials, 42 + n);
      for (const RatioAggregate& agg : aggregates) {
        // Keep the table readable: only CatBatch + two baselines.
        if (agg.scheduler != "catbatch" &&
            agg.scheduler != "relaxed-catbatch" &&
            agg.scheduler != "list-fifo") {
          continue;
        }
        table.add_row({family.label, agg.scheduler,
                       format_number(agg.max_ratio, 3),
                       format_number(agg.mean_ratio, 3),
                       format_number(agg.max_theorem1_margin, 3)});
      }
      table.add_separator();
    }
    std::cout << table.render();
  }
  std::cout << "\nShape check: catbatch's \"max ratio/bound\" stays <= 1 at "
               "every size (Theorem 1 is a worst-case guarantee; typical "
               "ratios are far below it). Greedy baselines usually win on "
               "benign instances but carry no o(P) guarantee.\n";
  return 0;
}
